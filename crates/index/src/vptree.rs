//! A vantage-point tree for metric range queries (reference \[6\]).
//!
//! The "metric-based index" option of Figure 5: works for any distance
//! satisfying the triangle inequality, so one backend serves both the
//! mutation distance (with metric score matrices — see
//! `ScoreMatrix::is_metric`) and the linear distance. Ablations A2/A3
//! compare it against the specialized trie and R-tree.
//!
//! Storage is SoA: all item vectors share one flat `data` array of
//! fixed `stride` (class vectors are uniform length), so the distance
//! evaluation at every tree node reads contiguous memory instead of
//! chasing a `Vec<Vec<_>>` double indirection.
//!
//! Build: recursively pick a vantage point, split the rest at the median
//! distance. Query: standard two-sided triangle pruning.

use pis_graph::GraphId;

/// A VP-tree over fixed-stride vectors of scalar `T` under a
/// caller-supplied metric.
///
/// The metric is passed at build and query time (not stored), keeping
/// the structure `Clone`/`Debug`-friendly; callers must use the same
/// metric for both or results are undefined.
#[derive(Clone, Debug)]
pub struct VpTree<T: Copy> {
    nodes: Vec<VpNode>,
    /// Item vectors, concatenated: item `i` is
    /// `data[i * stride..(i + 1) * stride]`.
    data: Vec<T>,
    /// Graph id of each item, parallel to the logical item order.
    graphs: Vec<GraphId>,
    stride: usize,
    root: Option<u32>,
}

#[derive(Clone, Debug)]
struct VpNode {
    /// Logical index of the vantage item.
    item: u32,
    /// Median distance separating inside from outside.
    radius: f64,
    inside: Option<u32>,
    outside: Option<u32>,
}

impl<T: Copy> VpTree<T> {
    /// Builds a tree over vectors of exactly `stride` scalars under
    /// `metric`.
    ///
    /// # Panics
    /// Panics if any item's vector length differs from `stride`.
    pub fn build(
        stride: usize,
        items: Vec<(Vec<T>, GraphId)>,
        metric: impl Fn(&[T], &[T]) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(items.len() * stride);
        let mut graphs = Vec::with_capacity(items.len());
        for (v, g) in items {
            assert_eq!(v.len(), stride, "item vector length must equal the tree stride");
            data.extend_from_slice(&v);
            graphs.push(g);
        }
        let mut order: Vec<u32> = (0..graphs.len() as u32).collect();
        let mut tree =
            VpTree { nodes: Vec::with_capacity(graphs.len()), data, graphs, stride, root: None };
        tree.root = tree.build_rec(&mut order, &metric);
        tree
    }

    /// The vector of logical item `i`.
    #[inline]
    fn item(&self, i: u32) -> &[T] {
        let s = i as usize * self.stride;
        &self.data[s..s + self.stride]
    }

    fn build_rec(&mut self, order: &mut [u32], metric: &impl Fn(&[T], &[T]) -> f64) -> Option<u32> {
        let (&vantage, rest) = order.split_first()?;
        let node_id = self.nodes.len() as u32;
        self.nodes.push(VpNode { item: vantage, radius: 0.0, inside: None, outside: None });
        if rest.is_empty() {
            return Some(node_id);
        }
        // Partition the rest at the median distance from the vantage.
        let mut with_dist: Vec<(f64, u32)> =
            rest.iter().map(|&i| (metric(self.item(vantage), self.item(i)), i)).collect();
        with_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("metric must be finite"));
        let mid = with_dist.len() / 2;
        let radius = with_dist[mid].0;
        let mut inside: Vec<u32> = with_dist[..mid].iter().map(|&(_, i)| i).collect();
        let mut outside: Vec<u32> = with_dist[mid..].iter().map(|&(_, i)| i).collect();
        self.nodes[node_id as usize].radius = radius;
        let inside_id = self.build_rec(&mut inside, metric);
        let outside_id = self.build_rec(&mut outside, metric);
        self.nodes[node_id as usize].inside = inside_id;
        self.nodes[node_id as usize].outside = outside_id;
        Some(node_id)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// The uniform vector length.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Consumes the tree, returning its items (used to rebuild after
    /// incremental additions — VP-trees do not support in-place
    /// insertion without degrading balance).
    pub fn into_items(self) -> Vec<(Vec<T>, GraphId)> {
        self.graphs
            .iter()
            .enumerate()
            .map(|(i, &g)| (self.data[i * self.stride..(i + 1) * self.stride].to_vec(), g))
            .collect()
    }

    /// The stored items (persistence and diagnostics).
    pub fn items(&self) -> impl Iterator<Item = (&[T], GraphId)> + '_ {
        self.graphs.iter().enumerate().map(|(i, &g)| (self.item(i as u32), g))
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Visits every `(graph, distance)` within `sigma` of `query` under
    /// `metric` (must be the build metric).
    ///
    /// # Panics
    /// Panics if `query.len() != stride` on a non-empty tree.
    pub fn range_query(
        &self,
        query: &[T],
        sigma: f64,
        metric: impl Fn(&[T], &[T]) -> f64,
        mut visit: impl FnMut(GraphId, f64),
    ) {
        if !self.is_empty() {
            assert_eq!(query.len(), self.stride, "query length must equal the tree stride");
        }
        self.search(self.root, query, sigma, &metric, &mut visit);
    }

    fn search(
        &self,
        node: Option<u32>,
        query: &[T],
        sigma: f64,
        metric: &impl Fn(&[T], &[T]) -> f64,
        visit: &mut impl FnMut(GraphId, f64),
    ) {
        let Some(id) = node else { return };
        let n = &self.nodes[id as usize];
        let d = metric(query, self.item(n.item));
        if d <= sigma {
            visit(self.graphs[n.item as usize], d);
        }
        // Triangle pruning: the inside ball holds items within `radius`
        // of the vantage; reachable iff d - sigma <= radius. The outside
        // shell holds items at >= radius; reachable iff d + sigma >=
        // radius.
        if d - sigma <= n.radius {
            self.search(n.inside, query, sigma, metric, visit);
        }
        if d + sigma >= n.radius {
            self.search(n.outside, query, sigma, metric, visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn collect(t: &VpTree<f64>, q: &[f64], sigma: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        t.range_query(q, sigma, l1, |g, d| out.push((g.0, d)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    #[test]
    fn small_queries() {
        let items =
            vec![(vec![0.0], GraphId(0)), (vec![1.0], GraphId(1)), (vec![10.0], GraphId(2))];
        let t = VpTree::build(1, items, l1);
        assert_eq!(collect(&t, &[0.0], 0.0), vec![(0, 0.0)]);
        assert_eq!(collect(&t, &[0.5], 0.5), vec![(0, 0.5), (1, 0.5)]);
        assert_eq!(collect(&t, &[0.0], 100.0).len(), 3);
    }

    #[test]
    fn agrees_with_linear_scan() {
        let mut items = Vec::new();
        let mut x = 7u64;
        for g in 0..300u32 {
            let mut p = Vec::with_capacity(2);
            for _ in 0..2 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                p.push(((x >> 33) % 1000) as f64 / 50.0);
            }
            items.push((p, GraphId(g)));
        }
        let reference = items.clone();
        let t = VpTree::build(2, items, l1);
        let query = [10.0, 10.0];
        for sigma in [0.25, 1.5, 6.0] {
            let mut expected: Vec<(u32, f64)> = reference
                .iter()
                .map(|(p, g)| (g.0, l1(p, &query)))
                .filter(|&(_, d)| d <= sigma)
                .collect();
            expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(collect(&t, &query, sigma), expected, "sigma={sigma}");
        }
    }

    #[test]
    fn works_with_discrete_hamming_metric() {
        // Label vectors under unit Hamming distance (a metric).
        fn hamming(a: &[u32], b: &[u32]) -> f64 {
            a.iter().zip(b).filter(|(x, y)| x != y).count() as f64
        }
        let items = vec![
            (vec![1, 2, 3], GraphId(0)),
            (vec![1, 2, 4], GraphId(1)),
            (vec![7, 8, 9], GraphId(2)),
        ];
        let t = VpTree::build(3, items, hamming);
        let mut out = Vec::new();
        t.range_query(&[1, 2, 3], 1.0, hamming, |g, d| out.push((g.0, d)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(out, vec![(0, 0.0), (1, 1.0)]);
    }

    #[test]
    fn empty_tree() {
        let t: VpTree<f64> = VpTree::build(1, vec![], l1);
        assert!(t.is_empty());
        assert!(collect(&t, &[0.0], 10.0).is_empty());
    }

    #[test]
    fn single_item() {
        let t = VpTree::build(1, vec![(vec![2.0], GraphId(9))], l1);
        assert_eq!(collect(&t, &[2.5], 0.5), vec![(9, 0.5)]);
        assert!(collect(&t, &[2.5], 0.4).is_empty());
    }

    #[test]
    fn duplicate_points_all_reported() {
        let items = vec![(vec![1.0], GraphId(0)), (vec![1.0], GraphId(1)), (vec![1.0], GraphId(2))];
        let t = VpTree::build(1, items, l1);
        assert_eq!(collect(&t, &[1.0], 0.0).len(), 3);
    }

    #[test]
    fn soa_round_trips_items() {
        let items = vec![(vec![1.0, 2.0], GraphId(3)), (vec![4.0, 5.0], GraphId(1))];
        let t = VpTree::build(2, items.clone(), l1);
        assert_eq!(t.stride(), 2);
        let listed: Vec<(Vec<f64>, GraphId)> = t.items().map(|(v, g)| (v.to_vec(), g)).collect();
        assert_eq!(listed, items);
        assert_eq!(t.into_items(), items);
    }

    #[test]
    #[should_panic(expected = "vector length")]
    fn mismatched_stride_rejected() {
        let _ = VpTree::build(2, vec![(vec![1.0], GraphId(0))], l1);
    }
}
