//! A vantage-point tree for metric range queries (reference \[6\]).
//!
//! The "metric-based index" option of Figure 5: works for any distance
//! satisfying the triangle inequality, so one backend serves both the
//! mutation distance (with metric score matrices — see
//! `ScoreMatrix::is_metric`) and the linear distance. Ablations A2/A3
//! compare it against the specialized trie and R-tree.
//!
//! Build: recursively pick a vantage point, split the rest at the median
//! distance. Query: standard two-sided triangle pruning.

use pis_graph::GraphId;

/// A VP-tree over items of type `T` under a caller-supplied metric.
///
/// The metric is passed at build and query time (not stored), keeping
/// the structure `Clone`/`Debug`-friendly; callers must use the same
/// metric for both or results are undefined.
#[derive(Clone, Debug)]
pub struct VpTree<T> {
    nodes: Vec<VpNode>,
    items: Vec<(T, GraphId)>,
    root: Option<u32>,
}

#[derive(Clone, Debug)]
struct VpNode {
    /// Index of the vantage item in `items`.
    item: u32,
    /// Median distance separating inside from outside.
    radius: f64,
    inside: Option<u32>,
    outside: Option<u32>,
}

impl<T> VpTree<T> {
    /// Builds a tree from items under `metric`.
    pub fn build(items: Vec<(T, GraphId)>, metric: impl Fn(&T, &T) -> f64) -> Self {
        let mut order: Vec<u32> = (0..items.len() as u32).collect();
        let mut tree = VpTree { nodes: Vec::with_capacity(items.len()), items, root: None };
        tree.root = tree.build_rec(&mut order, &metric);
        tree
    }

    fn build_rec(&mut self, order: &mut [u32], metric: &impl Fn(&T, &T) -> f64) -> Option<u32> {
        let (&vantage, rest) = order.split_first()?;
        let node_id = self.nodes.len() as u32;
        self.nodes.push(VpNode { item: vantage, radius: 0.0, inside: None, outside: None });
        if rest.is_empty() {
            return Some(node_id);
        }
        // Partition the rest at the median distance from the vantage.
        let v_item = &self.items[vantage as usize].0;
        let mut with_dist: Vec<(f64, u32)> =
            rest.iter().map(|&i| (metric(v_item, &self.items[i as usize].0), i)).collect();
        with_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("metric must be finite"));
        let mid = with_dist.len() / 2;
        let radius = with_dist[mid].0;
        let mut inside: Vec<u32> = with_dist[..mid].iter().map(|&(_, i)| i).collect();
        let mut outside: Vec<u32> = with_dist[mid..].iter().map(|&(_, i)| i).collect();
        self.nodes[node_id as usize].radius = radius;
        let inside_id = self.build_rec(&mut inside, metric);
        let outside_id = self.build_rec(&mut outside, metric);
        self.nodes[node_id as usize].inside = inside_id;
        self.nodes[node_id as usize].outside = outside_id;
        Some(node_id)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Consumes the tree, returning its items (used to rebuild after
    /// incremental additions — VP-trees do not support in-place
    /// insertion without degrading balance).
    pub fn into_items(self) -> Vec<(T, GraphId)> {
        self.items
    }

    /// The stored items (persistence and diagnostics).
    pub fn items(&self) -> &[(T, GraphId)] {
        &self.items
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Visits every `(graph, distance)` within `sigma` of `query` under
    /// `metric` (must be the build metric).
    pub fn range_query(
        &self,
        query: &T,
        sigma: f64,
        metric: impl Fn(&T, &T) -> f64,
        mut visit: impl FnMut(GraphId, f64),
    ) {
        self.search(self.root, query, sigma, &metric, &mut visit);
    }

    fn search(
        &self,
        node: Option<u32>,
        query: &T,
        sigma: f64,
        metric: &impl Fn(&T, &T) -> f64,
        visit: &mut impl FnMut(GraphId, f64),
    ) {
        let Some(id) = node else { return };
        let n = &self.nodes[id as usize];
        let (item, graph) = &self.items[n.item as usize];
        let d = metric(query, item);
        if d <= sigma {
            visit(*graph, d);
        }
        // Triangle pruning: the inside ball holds items within `radius`
        // of the vantage; reachable iff d - sigma <= radius. The outside
        // shell holds items at >= radius; reachable iff d + sigma >=
        // radius.
        if d - sigma <= n.radius {
            self.search(n.inside, query, sigma, metric, visit);
        }
        if d + sigma >= n.radius {
            self.search(n.outside, query, sigma, metric, visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::ptr_arg)] // the metric signature is Fn(&T, &T) with T = Vec<f64>
    fn l1(a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn collect(t: &VpTree<Vec<f64>>, q: &Vec<f64>, sigma: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        t.range_query(q, sigma, l1, |g, d| out.push((g.0, d)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    #[test]
    fn small_queries() {
        let items =
            vec![(vec![0.0], GraphId(0)), (vec![1.0], GraphId(1)), (vec![10.0], GraphId(2))];
        let t = VpTree::build(items, l1);
        assert_eq!(collect(&t, &vec![0.0], 0.0), vec![(0, 0.0)]);
        assert_eq!(collect(&t, &vec![0.5], 0.5), vec![(0, 0.5), (1, 0.5)]);
        assert_eq!(collect(&t, &vec![0.0], 100.0).len(), 3);
    }

    #[test]
    fn agrees_with_linear_scan() {
        let mut items = Vec::new();
        let mut x = 7u64;
        for g in 0..300u32 {
            let mut p = Vec::with_capacity(2);
            for _ in 0..2 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                p.push(((x >> 33) % 1000) as f64 / 50.0);
            }
            items.push((p, GraphId(g)));
        }
        let reference = items.clone();
        let t = VpTree::build(items, l1);
        let query = vec![10.0, 10.0];
        for sigma in [0.25, 1.5, 6.0] {
            let mut expected: Vec<(u32, f64)> = reference
                .iter()
                .map(|(p, g)| (g.0, l1(p, &query)))
                .filter(|&(_, d)| d <= sigma)
                .collect();
            expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(collect(&t, &query, sigma), expected, "sigma={sigma}");
        }
    }

    #[test]
    fn works_with_discrete_hamming_metric() {
        // Label vectors under unit Hamming distance (a metric).
        #[allow(clippy::ptr_arg)] // the metric signature is Fn(&T, &T) with T = Vec<u32>
        fn hamming(a: &Vec<u32>, b: &Vec<u32>) -> f64 {
            a.iter().zip(b).filter(|(x, y)| x != y).count() as f64
        }
        let items = vec![
            (vec![1, 2, 3], GraphId(0)),
            (vec![1, 2, 4], GraphId(1)),
            (vec![7, 8, 9], GraphId(2)),
        ];
        let t = VpTree::build(items, hamming);
        let mut out = Vec::new();
        t.range_query(&vec![1, 2, 3], 1.0, hamming, |g, d| out.push((g.0, d)));
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(out, vec![(0, 0.0), (1, 1.0)]);
    }

    #[test]
    fn empty_tree() {
        let t: VpTree<Vec<f64>> = VpTree::build(vec![], l1);
        assert!(t.is_empty());
        assert!(collect(&t, &vec![0.0], 10.0).is_empty());
    }

    #[test]
    fn single_item() {
        let t = VpTree::build(vec![(vec![2.0], GraphId(9))], l1);
        assert_eq!(collect(&t, &vec![2.5], 0.5), vec![(9, 0.5)]);
        assert!(collect(&t, &vec![2.5], 0.4).is_empty());
    }

    #[test]
    fn duplicate_points_all_reported() {
        let items = vec![(vec![1.0], GraphId(0)), (vec![1.0], GraphId(1)), (vec![1.0], GraphId(2))];
        let t = VpTree::build(items, l1);
        assert_eq!(collect(&t, &vec![1.0], 0.0).len(), 3);
    }
}
