//! Write-ahead log for acknowledged inserts.
//!
//! A snapshot captures the index at a point in time; every insert after
//! it is first appended here — length-prefixed, checksummed, fsynced —
//! and only then acknowledged and applied in memory. On reopen the log
//! is replayed on top of the snapshot, so a crash at any point loses
//! nothing that was acknowledged.
//!
//! Crash semantics at the tail: a final record whose frame extends past
//! end-of-file is a *torn tail* — the process died mid-append before
//! the fsync, so the insert was never acknowledged — and is truncated
//! away with a warning count in the [`WalReplay`] report. A *complete*
//! frame that fails its CRC or does not parse is corruption (bit rot,
//! not a crash) and is rejected with a typed
//! [`PersistError::Corrupt`] — replaying past it could resurrect
//! arbitrary garbage as acknowledged data. One known ambiguity is
//! accepted: a bit flip in the final record's length field that pushes
//! the frame past end-of-file is indistinguishable from a torn append
//! and is treated as one.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use pis_graph::io::{parse_database, write_database};
use pis_graph::{GraphId, LabeledGraph};

use crate::codec::{crash_point, crc32, len64, open_append, u32_of, ByteReader, ByteWriter};
use crate::persist::PersistError;

/// Log magic + version.
/// Magic header opening every WAL file.
pub const MAGIC: &[u8; 8] = b"PISWAL01";

/// Frame header: u32 payload length + u32 payload CRC32.
const FRAME_HEADER: usize = 8;

/// Encodes one insert record frame: `[len][crc32][payload]` where the
/// payload is the little-endian graph id followed by the graph in the
/// text database format (whose float `Display` is shortest-round-trip,
/// hence bit-exact on replay).
pub fn encode_record(gid: GraphId, graph: &LabeledGraph) -> Result<Vec<u8>, PersistError> {
    let mut payload = ByteWriter::new();
    payload.u32(gid.0);
    payload.bytes(write_database(std::slice::from_ref(graph)).as_bytes());
    let mut frame = ByteWriter::new();
    frame.u32(u32_of(payload.len(), "record length")?);
    frame.u32(crc32(payload.as_slice()));
    frame.bytes(payload.as_slice());
    Ok(frame.into_bytes())
}

/// Outcome of scanning a log: the decoded records plus what the scan
/// had to do to the tail.
#[derive(Debug)]
pub struct WalReplay {
    /// Acknowledged `(id, graph)` records, in append order.
    pub records: Vec<(GraphId, LabeledGraph)>,
    /// Byte length of the valid prefix (magic + complete records).
    pub valid_len: u64,
    /// Bytes of torn tail past the valid prefix (0 = clean shutdown).
    pub torn_tail_bytes: u64,
}

/// Scans raw log bytes into records, distinguishing a torn tail
/// (tolerated, truncated) from mid-log corruption (typed error).
pub fn replay_bytes(bytes: &[u8]) -> Result<WalReplay, PersistError> {
    if bytes.len() < MAGIC.len() {
        // Only a crash during the very first magic write can leave
        // this; nothing was ever acknowledged on top of it.
        return Ok(WalReplay {
            records: Vec::new(),
            valid_len: 0,
            torn_tail_bytes: len64(bytes.len()),
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(PersistError::Corrupt { offset: 0, message: "bad WAL magic".to_string() });
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER {
            // Partial frame header: torn append.
            break;
        }
        let mut r = ByteReader::new(&bytes[pos..pos + FRAME_HEADER], len64(pos));
        let len = r.u32_usize("record length")?;
        let crc = r.u32("record checksum")?;
        if bytes.len() - pos - FRAME_HEADER < len {
            // Frame extends past end-of-file: torn append (or a length
            // bit-flip in the final record — indistinguishable, see the
            // module docs).
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            return Err(PersistError::Corrupt {
                offset: len64(pos),
                message: "WAL record checksum mismatch".to_string(),
            });
        }
        records.push(decode_payload(payload, len64(pos + FRAME_HEADER))?);
        pos += FRAME_HEADER + len;
    }
    Ok(WalReplay { records, valid_len: len64(pos), torn_tail_bytes: len64(bytes.len() - pos) })
}

/// Decodes one checksummed payload: graph id + exactly one graph.
fn decode_payload(payload: &[u8], base: u64) -> Result<(GraphId, LabeledGraph), PersistError> {
    let mut r = ByteReader::new(payload, base);
    let gid = GraphId(r.u32("record graph id")?);
    let text = std::str::from_utf8(r.bytes(r.remaining(), "record graph text")?)
        .map_err(|_| r.corrupt("record graph text is not UTF-8"))?;
    let graphs =
        parse_database(text).map_err(|e| r.corrupt(&format!("record graph unparsable: {e}")))?;
    if graphs.len() != 1 {
        return Err(r.corrupt(&format!("record holds {} graphs, expected 1", graphs.len())));
    }
    // `pop` is Some by the length check; let-else keeps the decoder
    // panic-free on untrusted bytes.
    let mut graphs = graphs;
    let Some(graph) = graphs.pop() else {
        return Err(r.corrupt("record holds no graph"));
    };
    Ok((gid, graph))
}

/// An open write-ahead log: an appender positioned after the last
/// durable record.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Length of the durable (fsynced) prefix. Appends first truncate
    /// back to this, so torn bytes from a previously failed append
    /// self-heal instead of corrupting the next record.
    committed_len: u64,
}

impl Wal {
    /// Opens (creating if missing) the log at `path`, replays it, and
    /// truncates any torn tail so the appender starts on a clean
    /// boundary. Mid-log corruption is a typed error, never a panic.
    pub fn open(path: &Path) -> Result<(Wal, WalReplay), PersistError> {
        let mut file = open_append(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            file.sync_data()?;
            let wal = Wal { file, path: path.to_path_buf(), committed_len: len64(MAGIC.len()) };
            let replay = WalReplay {
                records: Vec::new(),
                valid_len: len64(MAGIC.len()),
                torn_tail_bytes: 0,
            };
            return Ok((wal, replay));
        }
        let mut replay = replay_bytes(&bytes)?;
        if replay.valid_len < len64(MAGIC.len()) {
            // Torn initial magic write: start the log over.
            file.set_len(0)?;
            file.write_all(MAGIC)?;
            file.sync_data()?;
            replay.valid_len = len64(MAGIC.len());
        } else if replay.torn_tail_bytes > 0 {
            file.set_len(replay.valid_len)?;
            file.sync_data()?;
        }
        let committed_len = replay.valid_len;
        Ok((Wal { file, path: path.to_path_buf(), committed_len }, replay))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Length of the durable prefix.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Appends one insert record and fsyncs it. Only on `Ok` is the
    /// insert durable (and may be acknowledged); on `Err` the on-disk
    /// state may hold a torn frame, which the next append — or the next
    /// reopen — truncates away.
    ///
    /// Failpoints (test tier): `wal-append` tears the frame mid-write
    /// and errors before the fsync; `wal-fsync` errors at the fsync and
    /// drops the un-synced frame bytes, deterministically simulating
    /// the kernel losing them in a crash.
    pub fn append(&mut self, gid: GraphId, graph: &LabeledGraph) -> Result<(), PersistError> {
        let frame = encode_record(gid, graph)?;
        // Self-heal torn bytes from a previously failed append.
        self.file.set_len(self.committed_len)?;
        crash_point("wal-append", Some((&mut self.file, &frame[..frame.len() / 2])))?;
        self.file.write_all(&frame)?;
        self.fsync_crash_point()?;
        self.file.sync_data()?;
        self.committed_len += len64(frame.len());
        Ok(())
    }

    #[cfg(feature = "failpoints")]
    fn fsync_crash_point(&mut self) -> std::io::Result<()> {
        match failpoints::consult("wal-fsync") {
            Some(failpoints::Action::Trip) => {
                // The frame was written but never synced; model the
                // kernel losing it by truncating back to the durable
                // prefix.
                self.file.set_len(self.committed_len)?;
                self.file.sync_data()?;
                Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "failpoint: simulated crash at wal-fsync",
                ))
            }
            Some(failpoints::Action::Panic) => panic!("failpoint panic at wal-fsync"),
            None => Ok(()),
        }
    }

    #[cfg(not(feature = "failpoints"))]
    fn fsync_crash_point(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    /// Empties the log back to its magic header — called after a
    /// snapshot has durably captured everything the log held. The
    /// `compact-truncate` failpoint simulates dying just before the
    /// truncation: the stale records survive and must replay
    /// idempotently on the next open.
    pub fn reset(&mut self) -> std::io::Result<()> {
        crash_point("compact-truncate", None)?;
        self.file.set_len(len64(MAGIC.len()))?;
        self.file.sync_data()?;
        self.committed_len = len64(MAGIC.len());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};

    fn graph(weight: f64) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs = b.add_vertices(2, VertexAttr::labeled(Label(1)));
        b.add_edge(vs[0], vs[1], EdgeAttr { label: Label(2), weight }).unwrap();
        b.build()
    }

    fn temp_log(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pis-wal-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let path = temp_log("replay");
        let _ = std::fs::remove_file(&path);
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        wal.append(GraphId(0), &graph(1.25)).unwrap();
        wal.append(GraphId(1), &graph(2.5)).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.torn_tail_bytes, 0);
        let ids: Vec<u32> = replay.records.iter().map(|(g, _)| g.0).collect();
        assert_eq!(ids, [0, 1]);
        // Weights round-trip bit-exactly through the text payload.
        let w = replay.records[1].1.edges()[0].attr.weight;
        assert_eq!(w.to_bits(), 2.5f64.to_bits());
    }

    #[test]
    fn torn_tail_is_truncated_not_rejected() {
        let path = temp_log("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(GraphId(0), &graph(1.0)).unwrap();
        let keep = wal.committed_len();
        drop(wal);
        // Simulate a crash mid-append: half a frame past the durable
        // prefix.
        let frame = encode_record(GraphId(1), &graph(2.0)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1, "acknowledged record survives");
        assert!(replay.torn_tail_bytes > 0, "torn tail is reported");
        assert_eq!(wal.committed_len(), keep);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep, "tail truncated on open");
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let path = temp_log("corrupt");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(GraphId(0), &graph(1.0)).unwrap();
        wal.append(GraphId(1), &graph(2.0)).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the *first* record (past magic +
        // header), leaving both frames structurally complete.
        let i = MAGIC.len() + FRAME_HEADER + 2;
        bytes[i] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match Wal::open(&path) {
            Err(PersistError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
