//! LSM pending-buffer equivalence: range queries over (frozen +
//! pending) must be *bit-identical* (f64 payloads included) to queries
//! over the merged index, for every backend, and the automatic
//! threshold merge must not change a single answer.

use pis_distance::{LinearDistance, MutationDistance};
use pis_graph::{EdgeAttr, GraphBuilder, GraphId, Label, LabeledGraph, VertexAttr};
use pis_index::{Backend, FragmentIndex, IndexConfig, IndexDistance};
use pis_mining::exhaustive::exhaustive_features;

fn ring(edge_labels: &[u32]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let n = edge_labels.len();
    let vs: Vec<_> =
        (0..n).map(|i| b.add_vertex(VertexAttr::labeled(Label(i as u32 % 3)))).collect();
    for (i, &l) in edge_labels.iter().enumerate() {
        b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr { label: Label(l), weight: 0.25 + l as f64 })
            .unwrap();
    }
    b.build()
}

fn base_db() -> Vec<LabeledGraph> {
    vec![ring(&[1, 1, 2, 1]), ring(&[1, 2, 1, 2]), ring(&[2, 2, 2, 2])]
}

fn incoming() -> Vec<LabeledGraph> {
    vec![ring(&[2, 1, 2, 1]), ring(&[1, 1, 1, 1]), ring(&[3, 2, 1, 2]), ring(&[1, 2, 3, 1, 2])]
}

fn build(backend: Backend, distance: &IndexDistance, merge_threshold: usize) -> FragmentIndex {
    let db = base_db();
    let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
    FragmentIndex::build(
        &db,
        exhaustive_features(&structures, 3),
        distance.clone(),
        &IndexConfig { backend, merge_threshold, ..IndexConfig::default() },
    )
}

/// Every (feature, probe, sigma) answer set, canonically ordered with
/// distances as raw bits so equality means bit-equality.
fn all_answers(index: &FragmentIndex, queries: &[LabeledGraph]) -> Vec<(u32, GraphId, u64)> {
    let mut out = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        for frag in index.enumerate_query_fragments(q) {
            for sigma in [0.0, 0.75, 1.5, 3.0, 1e9] {
                let mut hits = index.range_query(frag.feature, &frag.vector, sigma);
                hits.sort_by_key(|&(g, d)| (g.0, d.to_bits()));
                out.extend(hits.into_iter().map(|(g, d)| (qi as u32, g, d.to_bits())));
            }
        }
    }
    out
}

fn backends() -> [(Backend, IndexDistance); 4] {
    [
        (Backend::Trie, IndexDistance::Mutation(MutationDistance::edge_hamming())),
        (Backend::VpTree, IndexDistance::Mutation(MutationDistance::edge_hamming())),
        (Backend::RTree, IndexDistance::Linear(LinearDistance::default())),
        (Backend::VpTree, IndexDistance::Linear(LinearDistance::default())),
    ]
}

#[test]
fn pending_queries_are_bit_identical_to_merged() {
    for (backend, distance) in backends() {
        // merge_threshold 0 disables auto-merge: `lsm` keeps its
        // pending buffers, `merged` is compacted by hand.
        let mut lsm = build(backend, &distance, 0);
        let mut merged = build(backend, &distance, 0);
        for g in incoming() {
            lsm.insert_graph_pending(&g);
            merged.insert_graph_pending(&g);
        }
        assert!(lsm.pending_entries() > 0, "{backend:?}: inserts must land in pending buffers");
        merged.compact();
        assert_eq!(merged.pending_entries(), 0);

        let queries: Vec<LabeledGraph> = base_db().into_iter().chain(incoming()).collect();
        assert_eq!(
            all_answers(&lsm, &queries),
            all_answers(&merged, &queries),
            "{backend:?}: pending scan must match the merged structures bit-for-bit"
        );
    }
}

#[test]
fn pending_matches_the_eager_insert_path() {
    for (backend, distance) in backends() {
        let mut lsm = build(backend, &distance, 0);
        let mut eager = build(backend, &distance, 0);
        for g in incoming() {
            lsm.insert_graph_pending(&g);
            eager.insert_graph(&g);
        }
        let queries: Vec<LabeledGraph> = base_db().into_iter().chain(incoming()).collect();
        assert_eq!(all_answers(&lsm, &queries), all_answers(&eager, &queries), "{backend:?}");
    }
}

#[test]
fn threshold_merges_automatically_without_changing_answers() {
    for (backend, distance) in backends() {
        let mut auto = build(backend, &distance, 2);
        let mut manual = build(backend, &distance, 0);
        for g in incoming() {
            auto.insert_graph_pending(&g);
            manual.insert_graph_pending(&g);
        }
        // Threshold 2 with several entries per class per insert: every
        // touched class must have crossed it and merged.
        assert_eq!(auto.pending_entries(), 0, "{backend:?}: threshold merge did not fire");
        manual.compact();
        let queries: Vec<LabeledGraph> = base_db().into_iter().chain(incoming()).collect();
        assert_eq!(all_answers(&auto, &queries), all_answers(&manual, &queries), "{backend:?}");
    }
}

#[test]
fn compact_leaves_no_stale_rtrees() {
    let (backend, distance) = (Backend::RTree, IndexDistance::Linear(LinearDistance::default()));
    let mut index = build(backend, &distance, 0);
    for g in incoming() {
        index.insert_graph_pending(&g);
    }
    // Pending inserts never unfreeze the frozen side.
    assert_eq!(index.rtree_stale_classes(), 0);
    index.compact();
    assert_eq!(index.rtree_stale_classes(), 0);
    assert_eq!(index.pending_entries(), 0);
}
