//! Adversarial corpus for [`pis_index::persist::load_index`].
//!
//! A persisted index is untrusted input: a truncated copy, a bit-flipped
//! sector or a hand-edited file must come back as a typed
//! [`PersistError`], never a panic or an unbounded allocation. The
//! deterministic cases below each encode one panic the loader used to
//! be vulnerable to; the proptest sweeps mutate a valid save at random
//! positions and assert the loader survives every variant.

use pis_distance::MutationDistance;
use pis_graph::{EdgeAttr, GraphBuilder, Label, LabeledGraph, VertexAttr};
use pis_index::persist::{load_index, save_index, PersistError};
use pis_index::{Backend, FragmentIndex, IndexConfig, IndexDistance};
use pis_mining::exhaustive::exhaustive_features;
use proptest::prelude::*;

fn ring(labels: &[u32]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let n = labels.len();
    let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
    for (i, &l) in labels.iter().enumerate() {
        b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
    }
    b.build()
}

/// A small but representative saved index (trie backend, mutation
/// distance, several classes).
fn valid_save(backend: Backend) -> Vec<u8> {
    let db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 2, 1, 2]), ring(&[2, 2, 2, 2])];
    let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
    let index = FragmentIndex::build(
        &db,
        exhaustive_features(&structures, 3),
        IndexDistance::Mutation(MutationDistance::edge_hamming()),
        &IndexConfig { backend, ..IndexConfig::default() },
    );
    let mut buf = Vec::new();
    save_index(&index, &mut buf).unwrap();
    buf
}

/// Loads and demands a typed outcome: `Ok` (the mutation happened to be
/// harmless) or a `PersistError` — anything else is a panic and fails
/// the test on its own.
fn load_survives(bytes: &[u8]) -> Result<(), String> {
    match load_index(bytes) {
        Ok(_) => Ok(()),
        Err(PersistError::Io(_)) | Err(PersistError::Parse { .. }) => Ok(()),
    }
}

#[test]
fn out_of_range_ids_are_rejected() {
    let text = String::from_utf8(valid_save(Backend::Trie)).unwrap();
    // Posting ids at or past `graphs N` must be rejected, not carried
    // into bitset indexing later.
    let bad = text.replace("posting 3 0 1 2 ", "posting 3 0 1 99 ");
    assert!(matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })), "{bad}");
    // Unsorted postings would break the trie's slot translation.
    let bad = text.replace("posting 3 0 1 2 ", "posting 3 2 1 0 ");
    assert!(matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })));
}

#[test]
fn non_finite_floats_are_rejected() {
    let text = String::from_utf8(valid_save(Backend::Trie)).unwrap();
    let finite_bits = text
        .split_whitespace()
        .find(|t| t.len() == 16 && u64::from_str_radix(t, 16).is_ok())
        .expect("a save contains hex floats")
        .to_string();
    for bad_bits in ["7ff8000000000000", "7ff0000000000000", "fff0000000000000"] {
        let bad = text.replacen(&finite_bits, bad_bits, 1);
        assert!(
            matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })),
            "NaN/∞ bits {bad_bits} must be rejected"
        );
    }
}

#[test]
fn duplicate_features_are_rejected() {
    let text = String::from_utf8(valid_save(Backend::Trie)).unwrap();
    let feature_line =
        text.lines().find(|l| l.starts_with("feature ")).expect("save has features").to_string();
    // Duplicating a feature line (and bumping the count to match) used
    // to desynchronize the positional class↔feature mapping and index
    // out of bounds.
    let count = text.lines().filter(|l| l.starts_with("feature ")).count();
    let bad = text
        .replace(&format!("features {count}"), &format!("features {}", count + 1))
        .replacen(&feature_line, &format!("{feature_line}\n{feature_line}"), 1);
    assert!(matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })));
}

#[test]
fn malformed_feature_codes_are_rejected() {
    // Hand-built streams around `sequence_to_code`: each used to panic
    // inside `DfsCode::to_graph` before validation moved up front.
    let head = "PISIDX 1\ngraphs 0\nmax_embeddings 100\n\
                distance linear 3ff0000000000000 3ff0000000000000\nfeatures 1\n";
    for (what, feature) in [
        ("self-loop", "feature 1 2 1 0 0 0 0 0 0"),
        ("vertex id out of range", "feature 1 2 1 0 4000000000 0 0 0 0"),
        ("vertex id gap", "feature 1 4 3 0 0 2 0 0 0 2 3 0 0 0 0 3 0 0 0"),
        ("repeated edge", "feature 1 2 2 0 1 0 0 0 0 1 0 0 0 0"),
        ("vertex count mismatch", "feature 1 9 1 0 1 0 0 0 0"),
    ] {
        let bad = format!("{head}{feature}\n");
        assert!(
            matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })),
            "{what} must be a typed parse error"
        );
    }
}

#[test]
fn oversized_counts_do_not_allocate() {
    // A corrupt count must fail on the missing data, not reserve
    // gigabytes first.
    let huge = "PISIDX 1\ngraphs 5\nmax_embeddings 100\n\
                distance linear 3ff0000000000000 3ff0000000000000\n\
                features 18446744073709551615\n";
    assert!(load_index(huge.as_bytes()).is_err());
    let huge_matrix = "PISIDX 1\ngraphs 5\nmax_embeddings 100\ndistance mutation\n\
                       vertex_matrix 4294967295 3ff0000000000000\n";
    assert!(load_index(huge_matrix.as_bytes()).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a valid save anywhere yields a typed error or a
    /// harmless no-op (cutting trailing bytes past `end`), never a
    /// panic.
    #[test]
    fn truncations_never_panic(frac in 0usize..10_000, backend in 0u8..2) {
        let bytes = valid_save(if backend == 0 { Backend::Trie } else { Backend::VpTree });
        let cut = bytes.len() * frac / 10_000;
        prop_assert!(load_survives(&bytes[..cut]).is_ok());
    }

    /// Single-byte corruption (overwrite, insert, delete) at any
    /// position never panics the loader.
    #[test]
    fn byte_mutations_never_panic(
        pos in 0usize..10_000,
        byte in 0u8..=255,
        kind in 0u8..3,
    ) {
        let mut bytes = valid_save(Backend::Trie);
        let pos = pos % bytes.len();
        match kind {
            0 => bytes[pos] = byte,
            1 => bytes.insert(pos, byte),
            _ => { bytes.remove(pos); }
        }
        prop_assert!(load_survives(&bytes).is_ok());
    }

    /// Duplicating any whole line (sections included) never panics.
    #[test]
    fn duplicated_lines_never_panic(which in 0usize..10_000) {
        let text = String::from_utf8(valid_save(Backend::Trie)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let dup = lines[which % lines.len()];
        let mut mutated = Vec::with_capacity(lines.len() + 1);
        for (i, l) in lines.iter().enumerate() {
            mutated.push(*l);
            if i == which % lines.len() {
                mutated.push(dup);
            }
        }
        prop_assert!(load_survives(mutated.join("\n").as_bytes()).is_ok());
    }
}
