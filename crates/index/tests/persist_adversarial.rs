//! Adversarial corpus for the persistence layer: the text format
//! ([`pis_index::persist::load_index`]), the binary snapshot
//! ([`pis_index::decode_snapshot`]) and the write-ahead log
//! ([`pis_index::wal`]).
//!
//! A persisted index is untrusted input: a truncated copy, a bit-flipped
//! sector or a hand-edited file must come back as a typed
//! [`PersistError`], never a panic or an unbounded allocation. The
//! deterministic cases below each encode one panic the loader used to
//! be vulnerable to; the proptest sweeps mutate a valid save at random
//! positions and assert the loader survives every variant.

use pis_distance::MutationDistance;
use pis_graph::{EdgeAttr, GraphBuilder, GraphId, Label, LabeledGraph, VertexAttr};
use pis_index::persist::{load_index, save_index, PersistError};
use pis_index::{
    decode_snapshot, encode_snapshot, wal, Backend, FragmentIndex, IndexConfig, IndexDistance,
};
use pis_mining::exhaustive::exhaustive_features;
use proptest::prelude::*;

fn ring(labels: &[u32]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let n = labels.len();
    let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
    for (i, &l) in labels.iter().enumerate() {
        b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
    }
    b.build()
}

/// A small but representative saved index (trie backend, mutation
/// distance, several classes).
fn valid_save(backend: Backend) -> Vec<u8> {
    let db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 2, 1, 2]), ring(&[2, 2, 2, 2])];
    let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
    let index = FragmentIndex::build(
        &db,
        exhaustive_features(&structures, 3),
        IndexDistance::Mutation(MutationDistance::edge_hamming()),
        &IndexConfig { backend, ..IndexConfig::default() },
    );
    let mut buf = Vec::new();
    save_index(&index, &mut buf).unwrap();
    buf
}

/// Loads and demands a typed outcome: `Ok` (the mutation happened to be
/// harmless) or a `PersistError` — anything else is a panic and fails
/// the test on its own.
fn load_survives(bytes: &[u8]) -> Result<(), String> {
    match load_index(bytes) {
        Ok(_) => Ok(()),
        Err(PersistError::Io(_))
        | Err(PersistError::Parse { .. })
        | Err(PersistError::Corrupt { .. }) => Ok(()),
    }
}

#[test]
fn out_of_range_ids_are_rejected() {
    let text = String::from_utf8(valid_save(Backend::Trie)).unwrap();
    // Posting ids at or past `graphs N` must be rejected, not carried
    // into bitset indexing later.
    let bad = text.replace("posting 3 0 1 2 ", "posting 3 0 1 99 ");
    assert!(matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })), "{bad}");
    // Unsorted postings would break the trie's slot translation.
    let bad = text.replace("posting 3 0 1 2 ", "posting 3 2 1 0 ");
    assert!(matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })));
}

#[test]
fn non_finite_floats_are_rejected() {
    let text = String::from_utf8(valid_save(Backend::Trie)).unwrap();
    let finite_bits = text
        .split_whitespace()
        .find(|t| t.len() == 16 && u64::from_str_radix(t, 16).is_ok())
        .expect("a save contains hex floats")
        .to_string();
    for bad_bits in ["7ff8000000000000", "7ff0000000000000", "fff0000000000000"] {
        let bad = text.replacen(&finite_bits, bad_bits, 1);
        assert!(
            matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })),
            "NaN/∞ bits {bad_bits} must be rejected"
        );
    }
}

#[test]
fn duplicate_features_are_rejected() {
    let text = String::from_utf8(valid_save(Backend::Trie)).unwrap();
    let feature_line =
        text.lines().find(|l| l.starts_with("feature ")).expect("save has features").to_string();
    // Duplicating a feature line (and bumping the count to match) used
    // to desynchronize the positional class↔feature mapping and index
    // out of bounds.
    let count = text.lines().filter(|l| l.starts_with("feature ")).count();
    let bad = text
        .replace(&format!("features {count}"), &format!("features {}", count + 1))
        .replacen(&feature_line, &format!("{feature_line}\n{feature_line}"), 1);
    assert!(matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })));
}

#[test]
fn malformed_feature_codes_are_rejected() {
    // Hand-built streams around `sequence_to_code`: each used to panic
    // inside `DfsCode::to_graph` before validation moved up front.
    let head = "PISIDX 1\ngraphs 0\nmax_embeddings 100\n\
                distance linear 3ff0000000000000 3ff0000000000000\nfeatures 1\n";
    for (what, feature) in [
        ("self-loop", "feature 1 2 1 0 0 0 0 0 0"),
        ("vertex id out of range", "feature 1 2 1 0 4000000000 0 0 0 0"),
        ("vertex id gap", "feature 1 4 3 0 0 2 0 0 0 2 3 0 0 0 0 3 0 0 0"),
        ("repeated edge", "feature 1 2 2 0 1 0 0 0 0 1 0 0 0 0"),
        ("vertex count mismatch", "feature 1 9 1 0 1 0 0 0 0"),
    ] {
        let bad = format!("{head}{feature}\n");
        assert!(
            matches!(load_index(bad.as_bytes()), Err(PersistError::Parse { .. })),
            "{what} must be a typed parse error"
        );
    }
}

#[test]
fn oversized_counts_do_not_allocate() {
    // A corrupt count must fail on the missing data, not reserve
    // gigabytes first.
    let huge = "PISIDX 1\ngraphs 5\nmax_embeddings 100\n\
                distance linear 3ff0000000000000 3ff0000000000000\n\
                features 18446744073709551615\n";
    assert!(load_index(huge.as_bytes()).is_err());
    let huge_matrix = "PISIDX 1\ngraphs 5\nmax_embeddings 100\ndistance mutation\n\
                       vertex_matrix 4294967295 3ff0000000000000\n";
    assert!(load_index(huge_matrix.as_bytes()).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a valid save anywhere yields a typed error or a
    /// harmless no-op (cutting trailing bytes past `end`), never a
    /// panic.
    #[test]
    fn truncations_never_panic(frac in 0usize..10_000, backend in 0u8..2) {
        let bytes = valid_save(if backend == 0 { Backend::Trie } else { Backend::VpTree });
        let cut = bytes.len() * frac / 10_000;
        prop_assert!(load_survives(&bytes[..cut]).is_ok());
    }

    /// Single-byte corruption (overwrite, insert, delete) at any
    /// position never panics the loader.
    #[test]
    fn byte_mutations_never_panic(
        pos in 0usize..10_000,
        byte in 0u8..=255,
        kind in 0u8..3,
    ) {
        let mut bytes = valid_save(Backend::Trie);
        let pos = pos % bytes.len();
        match kind {
            0 => bytes[pos] = byte,
            1 => bytes.insert(pos, byte),
            _ => { bytes.remove(pos); }
        }
        prop_assert!(load_survives(&bytes).is_ok());
    }

    /// Duplicating any whole line (sections included) never panics.
    #[test]
    fn duplicated_lines_never_panic(which in 0usize..10_000) {
        let text = String::from_utf8(valid_save(Backend::Trie)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let dup = lines[which % lines.len()];
        let mut mutated = Vec::with_capacity(lines.len() + 1);
        for (i, l) in lines.iter().enumerate() {
            mutated.push(*l);
            if i == which % lines.len() {
                mutated.push(dup);
            }
        }
        prop_assert!(load_survives(mutated.join("\n").as_bytes()).is_ok());
    }
}

// ---------------------------------------------------------------------
// Binary snapshot format
// ---------------------------------------------------------------------

/// A valid snapshot (index + database) for mutation over.
fn valid_snapshot(backend: Backend) -> Vec<u8> {
    let db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 2, 1, 2]), ring(&[2, 2, 2, 2])];
    let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
    let index = FragmentIndex::build(
        &db,
        exhaustive_features(&structures, 3),
        IndexDistance::Mutation(MutationDistance::edge_hamming()),
        &IndexConfig { backend, ..IndexConfig::default() },
    );
    encode_snapshot(&index, &db).unwrap()
}

/// Decodes and demands a typed outcome — identical contract to
/// [`load_survives`] for the binary format.
fn snapshot_survives(bytes: &[u8]) -> Result<(), String> {
    match decode_snapshot(bytes) {
        Ok(_) => Ok(()),
        Err(PersistError::Io(_))
        | Err(PersistError::Parse { .. })
        | Err(PersistError::Corrupt { .. }) => Ok(()),
    }
}

/// Truncation at *every* byte boundary of the header and section table
/// — the region whose fields drive all later offsets — is a typed
/// error. (The proptest below sweeps the payload region too.)
#[test]
fn snapshot_header_truncations_are_exhaustively_typed() {
    let bytes = valid_snapshot(Backend::Trie);
    // magic(8) + version(4) + section_count(4) + 4 table entries of 24.
    let header_len = 8 + 4 + 4 + 4 * 24;
    assert!(bytes.len() > header_len);
    for cut in 0..=header_len {
        assert!(
            matches!(decode_snapshot(&bytes[..cut]), Err(PersistError::Corrupt { .. })),
            "header truncation to {cut} bytes must be a typed corruption error"
        );
    }
}

/// Every single-byte overwrite of the whole file is caught: the footer
/// checksum covers every byte before it, and a flip inside the footer
/// itself breaks the checksum comparison.
#[test]
fn snapshot_bit_flip_corpus_is_always_rejected() {
    let bytes = valid_snapshot(Backend::Trie);
    // Step through the file; XOR with a non-zero pattern at each spot.
    for pos in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x20;
        assert!(
            matches!(decode_snapshot(&bad), Err(PersistError::Corrupt { .. })),
            "bit flip at byte {pos} must be rejected"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a snapshot anywhere never panics the decoder.
    #[test]
    fn snapshot_truncations_never_panic(frac in 0usize..10_000, backend in 0u8..2) {
        let bytes = valid_snapshot(if backend == 0 { Backend::Trie } else { Backend::VpTree });
        let cut = bytes.len() * frac / 10_000;
        prop_assert!(snapshot_survives(&bytes[..cut]).is_ok());
    }

    /// Single-byte corruption (overwrite, insert, delete) at any
    /// position never panics the decoder.
    #[test]
    fn snapshot_byte_mutations_never_panic(
        pos in 0usize..100_000,
        byte in 0u8..=255,
        kind in 0u8..3,
    ) {
        let mut bytes = valid_snapshot(Backend::Trie);
        let pos = pos % bytes.len();
        match kind {
            0 => bytes[pos] = byte,
            1 => bytes.insert(pos, byte),
            _ => { bytes.remove(pos); }
        }
        prop_assert!(snapshot_survives(&bytes).is_ok());
    }
}

// ---------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------

/// A valid WAL byte stream holding `graphs` as records `base..`.
fn valid_wal(graphs: &[LabeledGraph], base: u32) -> Vec<u8> {
    let mut bytes = wal::MAGIC.to_vec();
    for (i, g) in graphs.iter().enumerate() {
        bytes.extend_from_slice(&wal::encode_record(GraphId(base + i as u32), g).unwrap());
    }
    bytes
}

/// The crash-tolerance line: a *torn tail* (any truncation past the
/// magic) is accepted with the complete prefix intact, while corruption
/// *inside* a complete record is rejected — fsynced history never
/// silently shrinks.
#[test]
fn wal_torn_tail_is_accepted_mid_log_corruption_is_not() {
    let graphs = [ring(&[1, 2, 1, 2]), ring(&[2, 2, 1, 1])];
    let bytes = valid_wal(&graphs, 3);
    let first_record_end =
        wal::MAGIC.len() + wal::encode_record(GraphId(3), &graphs[0]).unwrap().len();

    // Truncation at every byte boundary: a kill can only shorten the
    // file, and every such file must open.
    for cut in wal::MAGIC.len()..=bytes.len() {
        let replay = wal::replay_bytes(&bytes[..cut]).unwrap_or_else(|e| {
            panic!("truncation to {cut} bytes must be accepted as a torn tail, got {e}")
        });
        let expect = usize::from(cut >= first_record_end) + usize::from(cut >= bytes.len());
        assert_eq!(replay.records.len(), expect, "complete prefix must survive (cut {cut})");
        assert_eq!(replay.valid_len as usize + replay.torn_tail_bytes as usize, cut);
    }

    // A byte flip inside the *first* (complete, fsynced) record is not
    // a torn tail: typed rejection, no silent data loss.
    let mut bad = bytes.clone();
    bad[wal::MAGIC.len() + 8 + 2] ^= 0x01;
    assert!(matches!(wal::replay_bytes(&bad), Err(PersistError::Corrupt { .. })));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte mutation of a WAL stream is either survivable
    /// (torn tail / happens to stay valid) or a typed error.
    #[test]
    fn wal_byte_mutations_never_panic(
        pos in 0usize..100_000,
        byte in 0u8..=255,
        kind in 0u8..3,
    ) {
        let mut bytes = valid_wal(&[ring(&[1, 2, 1, 2]), ring(&[2, 2, 1, 1])], 0);
        let pos = pos % bytes.len();
        match kind {
            0 => bytes[pos] = byte,
            1 => bytes.insert(pos, byte),
            _ => { bytes.remove(pos); }
        }
        match wal::replay_bytes(&bytes) {
            Ok(_) | Err(PersistError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot → WAL replay → query: bit-identity with the live index
// ---------------------------------------------------------------------

/// All (feature, probe, σ) answers, distances as raw bits.
fn fingerprint(index: &FragmentIndex, queries: &[LabeledGraph]) -> Vec<(u32, GraphId, u64)> {
    let mut out = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        for frag in index.enumerate_query_fragments(q) {
            for sigma in [0.0, 1.0, 2.5, 1e9] {
                let mut hits = index.range_query(frag.feature, &frag.vector, sigma);
                hits.sort_by_key(|&(g, d)| (g.0, d.to_bits()));
                out.extend(hits.into_iter().map(|(g, d)| (qi as u32, g, d.to_bits())));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full durability pipeline — snapshot the frozen index, log
    /// later inserts to a WAL, decode + replay — answers every range
    /// query bit-identically (f64 payloads included) to the live
    /// in-memory index that never touched disk.
    #[test]
    fn snapshot_plus_wal_replay_is_bit_identical_to_live(
        extra in prop::collection::vec(prop::collection::vec(1u32..4, 4), 1..4),
        backend in 0u8..2,
    ) {
        let backend = if backend == 0 { Backend::Trie } else { Backend::VpTree };
        let mut db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 2, 1, 2]), ring(&[2, 2, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 3);
        let distance = IndexDistance::Mutation(MutationDistance::edge_hamming());
        let config = IndexConfig { backend, ..IndexConfig::default() };

        // Live side: never persisted.
        let mut live = FragmentIndex::build(&db, features.clone(), distance.clone(), &config);
        // Durable side: snapshot now, WAL the rest.
        let durable_base = FragmentIndex::build(&db, features, distance, &config);
        let snapshot = encode_snapshot(&durable_base, &db).unwrap();
        let incoming: Vec<LabeledGraph> = extra.iter().map(|ls| ring(ls)).collect();
        let wal_bytes = valid_wal(&incoming, db.len() as u32);

        for g in &incoming {
            live.insert_graph_pending(g);
            db.push(g.clone());
        }

        let (mut restored, restored_db) = decode_snapshot(&snapshot).unwrap();
        let replay = wal::replay_bytes(&wal_bytes).unwrap();
        prop_assert_eq!(replay.torn_tail_bytes, 0);
        for (i, (gid, g)) in replay.records.into_iter().enumerate() {
            prop_assert_eq!(gid.index(), restored_db.len() + i);
            restored.insert_graph_pending(&g);
        }

        prop_assert_eq!(fingerprint(&live, &db), fingerprint(&restored, &db));
    }
}
