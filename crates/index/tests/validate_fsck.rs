//! Accept-side sweep for the deep structural validation
//! ([`pis_index::FragmentIndex::validate`]).
//!
//! The reject side lives next to each structure (bit-flip corpora over
//! the trie's arena columns, pointer surgery on the R-tree, field
//! corruption on the index). This file pins the other half of the
//! contract: an index reached through *any* public lifecycle — build,
//! eager insert, LSM pending insert, threshold-triggered merges,
//! compaction, snapshot round trip — validates cleanly, so a validation
//! failure in the field always means corruption, never a false alarm.

use pis_distance::{LinearDistance, MutationDistance};
use pis_graph::{EdgeAttr, GraphBuilder, Label, LabeledGraph, VertexAttr};
use pis_index::{
    decode_snapshot, encode_snapshot, Backend, FragmentIndex, IndexConfig, IndexDistance,
};
use pis_mining::exhaustive::exhaustive_features;
use proptest::prelude::*;

fn ring(labels: &[u32]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let n = labels.len();
    let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
    for (i, &l) in labels.iter().enumerate() {
        b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).unwrap();
    }
    b.build()
}

fn weighted_ring(weights: &[f64]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let n = weights.len();
    let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
    for (i, &w) in weights.iter().enumerate() {
        b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr { label: Label(0), weight: w }).unwrap();
    }
    b.build()
}

/// Validates and surfaces the violation as the proptest failure.
fn assert_valid(index: &FragmentIndex, context: &str) -> Result<(), TestCaseError> {
    match index.validate() {
        Ok(_) => Ok(()),
        Err(m) => {
            prop_assert!(false, "{context}: {m}");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mutation distance, both label backends: every lifecycle stage
    /// validates, and the tallies stay consistent with the public
    /// counters.
    #[test]
    fn label_lifecycle_always_validates(
        extra in prop::collection::vec(prop::collection::vec(1u32..4, 4), 1..5),
        backend in 0u8..2,
        merge_threshold in 0usize..6,
        eager in 0u8..2,
    ) {
        let eager = eager == 1;
        let backend = if backend == 0 { Backend::Trie } else { Backend::VpTree };
        let mut db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 2, 1, 2]), ring(&[2, 2, 2, 2])];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let mut index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Mutation(MutationDistance::edge_hamming()),
            &IndexConfig { backend, merge_threshold, ..IndexConfig::default() },
        );
        assert_valid(&index, "after build")?;
        for ls in &extra {
            let g = ring(ls);
            if eager {
                index.insert_graph(&g);
            } else {
                index.insert_graph_pending(&g);
            }
            db.push(g);
            assert_valid(&index, "after insert")?;
        }
        let report = index.validate().unwrap();
        prop_assert_eq!(report.classes, index.features().len());
        prop_assert_eq!(
            report.frozen_entries + report.pending_entries,
            index.total_entries()
        );
        prop_assert_eq!(report.pending_entries, index.pending_entries());
        index.compact();
        assert_valid(&index, "after compact")?;
        prop_assert_eq!(index.validate().unwrap().pending_entries, 0);

        let bytes = encode_snapshot(&index, &db).unwrap();
        let (restored, _) = decode_snapshot(&bytes).unwrap();
        assert_valid(&restored, "after snapshot round trip")?;
    }

    /// Linear distance over weight vectors: the R-tree (with its
    /// re-flatten arena comparison) and the vp-tree validate through
    /// the same lifecycle.
    #[test]
    fn weight_lifecycle_always_validates(
        extra in prop::collection::vec(prop::collection::vec(1u32..40, 4), 1..5),
        backend in 0u8..2,
        merge_threshold in 0usize..6,
    ) {
        let backend = if backend == 0 { Backend::RTree } else { Backend::VpTree };
        let db = vec![
            weighted_ring(&[1.0, 1.0, 1.0, 1.0]),
            weighted_ring(&[1.0, 1.5, 2.0, 2.5]),
            weighted_ring(&[4.0, 4.0, 4.0, 4.0]),
        ];
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let mut index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Linear(LinearDistance::edges_only()),
            &IndexConfig { backend, merge_threshold, ..IndexConfig::default() },
        );
        assert_valid(&index, "after build")?;
        for ws in &extra {
            let ws: Vec<f64> = ws.iter().map(|&w| f64::from(w) / 4.0).collect();
            index.insert_graph_pending(&weighted_ring(&ws));
            assert_valid(&index, "after pending insert")?;
        }
        index.compact();
        assert_valid(&index, "after compact")?;
    }
}
