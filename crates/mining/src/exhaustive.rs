//! Exhaustive feature generation.
//!
//! Enumerates *every* connected structure with at most `max_edges` edges
//! occurring in the database, via `pis-graph`'s subgraph enumerator and
//! canonical deduplication. Exact but exponential in the cap — the
//! oracle feature source for tests and small databases, and the way to
//! realize the paper's Example 4 ("suppose we index all of the edges").
//!
//! For production-size databases use [`crate::gindex::select_features`],
//! which only visits frequent patterns.

use pis_graph::canonical::min_dfs_code;
use pis_graph::enumerate::connected_edge_subgraphs;
use pis_graph::util::FxHashMap;
use pis_graph::LabeledGraph;

use crate::feature::FeatureSet;

/// Enumerates all structures of 1..=`max_edges` edges present in
/// `structures` (label-erased graphs), with exact supports.
pub fn exhaustive_features(structures: &[LabeledGraph], max_edges: usize) -> FeatureSet {
    // canonical sequence -> (code, supporting graph count, last graph).
    let mut by_seq: FxHashMap<Vec<u32>, (pis_graph::canonical::DfsCode, usize, usize)> =
        FxHashMap::default();
    for (gid, g) in structures.iter().enumerate() {
        // Dedup within one graph first: the same structure appears at
        // many sites but contributes one unit of support.
        let mut local: FxHashMap<Vec<u32>, pis_graph::canonical::DfsCode> = FxHashMap::default();
        connected_edge_subgraphs(g, max_edges, |edges| {
            let (sub, _) = g.edge_subgraph(edges);
            let canon = min_dfs_code(&sub).expect("edge subgraphs are connected");
            local.entry(canon.code.to_sequence()).or_insert(canon.code);
        });
        for (seq, code) in local {
            let entry = by_seq.entry(seq).or_insert((code, 0, usize::MAX));
            if entry.2 != gid {
                entry.1 += 1;
                entry.2 = gid;
            }
        }
    }
    let mut features: Vec<_> = by_seq.into_values().collect();
    // Deterministic order: by size, then canonical sequence.
    features.sort_by(|a, b| {
        a.0.edge_count()
            .cmp(&b.0.edge_count())
            .then_with(|| a.0.to_sequence().cmp(&b.0.to_sequence()))
    });
    let mut set = FeatureSet::new();
    for (code, support, _) in features {
        set.insert(code, support);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gspan::{mine, GspanConfig};
    use pis_graph::graph::{complete_graph, cycle_graph, path_graph};
    use pis_graph::Label;

    fn erased(gs: &[LabeledGraph]) -> Vec<LabeledGraph> {
        gs.iter().map(LabeledGraph::erase_labels).collect()
    }

    #[test]
    fn enumerates_all_structures_of_a_cycle() {
        let db = erased(&[cycle_graph(5, Label(0), Label(0))]);
        let set = exhaustive_features(&db, 5);
        // Structures in a 5-cycle: paths of 1..4 edges and the cycle.
        assert_eq!(set.len(), 5);
        assert!(set.iter().all(|f| f.support == 1));
    }

    #[test]
    fn supports_count_graphs_not_occurrences() {
        let db = erased(&[cycle_graph(6, Label(0), Label(0)), cycle_graph(6, Label(0), Label(0))]);
        let set = exhaustive_features(&db, 3);
        // Paths of 1..3 edges, each supported by both graphs (despite
        // many embeddings per graph).
        assert_eq!(set.len(), 3);
        assert!(set.iter().all(|f| f.support == 2));
    }

    #[test]
    fn agrees_with_gspan_at_min_support_one() {
        let db = erased(&[
            cycle_graph(5, Label(0), Label(0)),
            path_graph(5, Label(0), Label(0)),
            complete_graph(4, Label(0), Label(0)),
        ]);
        let exhaustive = exhaustive_features(&db, 4);
        let cfg = GspanConfig { min_support: 1, max_edges: 4, ..GspanConfig::default() };
        let mined = mine(&db, &cfg);
        assert_eq!(
            exhaustive.len(),
            mined.len(),
            "gSpan with minsup=1 must find exactly the exhaustive set"
        );
        for p in &mined {
            let id = exhaustive.lookup(&p.code.to_sequence()).unwrap_or_else(|| {
                panic!("gSpan pattern missing from exhaustive set: {:?}", p.code)
            });
            assert_eq!(exhaustive.get(id).support, p.support, "support mismatch for {:?}", p.code);
        }
    }

    #[test]
    fn deterministic_ordering() {
        let db = erased(&[complete_graph(4, Label(0), Label(0))]);
        let a = exhaustive_features(&db, 3);
        let b = exhaustive_features(&db, 3);
        let ids_a: Vec<Vec<u32>> = a.iter().map(|f| f.code.to_sequence()).collect();
        let ids_b: Vec<Vec<u32>> = b.iter().map(|f| f.code.to_sequence()).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn empty_database() {
        assert!(exhaustive_features(&[], 4).is_empty());
    }
}
