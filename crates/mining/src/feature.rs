//! Deduplicated feature sets.
//!
//! A *feature* is an index structure `f` in the paper's terms: a bare
//! (label-erased) connected structure whose equivalence class `[f]` gets
//! its own entry in the fragment index's hash table. Every feature
//! stores its canonical representative graph — vertices in DFS-discovery
//! order, edges in code order — which defines the class-consistent
//! readout order for label vectors.

use std::fmt;

use pis_graph::canonical::DfsCode;
use pis_graph::util::FxHashMap;
use pis_graph::LabeledGraph;

/// Identifier of a feature within a [`FeatureSet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FeatureId(pub u32);

impl FeatureId {
    /// The feature position as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FeatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One index structure.
#[derive(Clone, Debug)]
pub struct Feature {
    /// Identifier within the owning set.
    pub id: FeatureId,
    /// Canonical representative: vertices in DFS order, edges in code
    /// order (rebuilt from the minimum DFS code, so its identity order
    /// *is* canonical).
    pub structure: LabeledGraph,
    /// The minimum DFS code of the structure.
    pub code: DfsCode,
    /// Number of database graphs containing the structure (if known).
    pub support: usize,
}

impl Feature {
    /// Edge count of the structure.
    pub fn edge_count(&self) -> usize {
        self.structure.edge_count()
    }

    /// Vertex count of the structure.
    pub fn vertex_count(&self) -> usize {
        self.structure.vertex_count()
    }
}

/// A set of features, deduplicated by canonical code.
#[derive(Clone, Debug, Default)]
pub struct FeatureSet {
    features: Vec<Feature>,
    by_sequence: FxHashMap<Vec<u32>, FeatureId>,
}

impl FeatureSet {
    /// An empty set.
    pub fn new() -> Self {
        FeatureSet::default()
    }

    /// Inserts a feature by its minimum DFS code; returns the id and
    /// whether the feature was new. Re-inserting an existing code keeps
    /// the larger support.
    pub fn insert(&mut self, code: DfsCode, support: usize) -> (FeatureId, bool) {
        let seq = code.to_sequence();
        if let Some(&id) = self.by_sequence.get(&seq) {
            let f = &mut self.features[id.index()];
            f.support = f.support.max(support);
            return (id, false);
        }
        let id = FeatureId(self.features.len() as u32);
        let structure = code.to_graph();
        self.features.push(Feature { id, structure, code, support });
        self.by_sequence.insert(seq, id);
        (id, true)
    }

    /// The feature with the given id.
    pub fn get(&self, id: FeatureId) -> &Feature {
        &self.features[id.index()]
    }

    /// Looks a feature up by canonical sequence.
    pub fn lookup(&self, sequence: &[u32]) -> Option<FeatureId> {
        self.by_sequence.get(sequence).copied()
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Iterator over all features.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Feature> {
        self.features.iter()
    }

    /// The smallest feature edge count (the paper's `l`, which bounds
    /// the maximum partition size `|Q|/l` in Lemma 1).
    pub fn min_edges(&self) -> Option<usize> {
        self.features.iter().map(Feature::edge_count).min()
    }

    /// The largest feature edge count.
    pub fn max_edges(&self) -> Option<usize> {
        self.features.iter().map(Feature::edge_count).max()
    }
}

impl<'a> IntoIterator for &'a FeatureSet {
    type Item = &'a Feature;
    type IntoIter = std::slice::Iter<'a, Feature>;

    fn into_iter(self) -> Self::IntoIter {
        self.features.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::canonical::min_dfs_code;
    use pis_graph::graph::{cycle_graph, path_graph};
    use pis_graph::Label;

    fn code_of(g: &LabeledGraph) -> DfsCode {
        min_dfs_code(g).unwrap().code
    }

    #[test]
    fn insert_dedups_by_code() {
        let mut set = FeatureSet::new();
        let c6 = code_of(&cycle_graph(6, Label(0), Label(0)));
        let (id1, new1) = set.insert(c6.clone(), 10);
        let (id2, new2) = set.insert(c6.clone(), 25);
        assert_eq!(id1, id2);
        assert!(new1);
        assert!(!new2);
        assert_eq!(set.len(), 1);
        // Larger support wins.
        assert_eq!(set.get(id1).support, 25);
    }

    #[test]
    fn lookup_by_sequence() {
        let mut set = FeatureSet::new();
        let p = code_of(&path_graph(3, Label(0), Label(0)));
        let (id, _) = set.insert(p.clone(), 1);
        assert_eq!(set.lookup(&p.to_sequence()), Some(id));
        assert_eq!(set.lookup(&[1, 2, 3]), None);
    }

    #[test]
    fn representative_is_its_own_canonical_form() {
        let mut set = FeatureSet::new();
        let c = code_of(&cycle_graph(5, Label(0), Label(0)));
        let (id, _) = set.insert(c, 1);
        let f = set.get(id);
        let recanon = min_dfs_code(&f.structure).unwrap();
        assert_eq!(recanon.code, f.code);
        // Identity orders: rebuilding preserved DFS vertex order.
        for (i, v) in recanon.vertex_order.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
    }

    #[test]
    fn size_extrema() {
        let mut set = FeatureSet::new();
        assert_eq!(set.min_edges(), None);
        set.insert(code_of(&path_graph(2, Label(0), Label(0))), 1);
        set.insert(code_of(&cycle_graph(6, Label(0), Label(0))), 1);
        assert_eq!(set.min_edges(), Some(1));
        assert_eq!(set.max_edges(), Some(6));
    }

    #[test]
    fn iteration_orders_by_id() {
        let mut set = FeatureSet::new();
        set.insert(code_of(&path_graph(2, Label(0), Label(0))), 1);
        set.insert(code_of(&path_graph(3, Label(0), Label(0))), 1);
        let ids: Vec<u32> = set.iter().map(|f| f.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        let via_ref: Vec<u32> = (&set).into_iter().map(|f| f.id.0).collect();
        assert_eq!(via_ref, ids);
    }
}
