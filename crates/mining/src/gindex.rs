//! gIndex-style discriminative feature selection (reference \[16\]).
//!
//! gIndex keeps a frequent structure `f` only when it is
//! *discriminative*: the graphs containing all of `f`'s already-selected
//! sub-structures must outnumber the graphs containing `f` itself by at
//! least the discriminative ratio `γ`. Frequency is governed by a
//! size-increasing support curve so small structures (which are cheap
//! and numerous) need little support while large ones must be common to
//! earn an index slot.
//!
//! Patterns are processed in increasing size, so sub-structure posting
//! lists are always available when a super-structure is examined.

use pis_graph::iso::{is_subgraph, IsoConfig};
use pis_graph::GraphId;

use crate::feature::FeatureSet;
use crate::gspan::{mine, GspanConfig, MinedPattern};

/// Configuration of gIndex feature selection.
#[derive(Clone, Debug)]
pub struct GindexConfig {
    /// Largest indexed structure, in edges (the paper sweeps 4–6 in
    /// Figure 12).
    pub max_edges: usize,
    /// Minimum support for 1-edge structures, as a fraction of the
    /// database size.
    pub min_support_fraction: f64,
    /// Slope of the size-increasing support curve (see
    /// [`GspanConfig::size_support_slope`]).
    pub size_support_slope: f64,
    /// Discriminative ratio `γ`: keep `f` iff
    /// `|∩ sub-feature supports| ≥ γ · |support(f)|`. 1.0 keeps every
    /// frequent structure — the right default for PIS, whose pruning
    /// power comes from *label* distances over frequent structures, not
    /// from structural rarity (bare-structure supports on molecule data
    /// are so uniform that γ > 1 rejects nearly everything; the A-series
    /// ablations sweep γ).
    pub discriminative_ratio: f64,
    /// Hard cap on the number of selected features (the paper indexes
    /// ≈ 2 000 fragments); most-supported structures win ties.
    pub max_features: usize,
}

impl Default for GindexConfig {
    fn default() -> Self {
        GindexConfig {
            max_edges: 5,
            min_support_fraction: 0.01,
            size_support_slope: 0.1,
            discriminative_ratio: 1.0,
            max_features: 2000,
        }
    }
}

/// Selects discriminative frequent structures from a database of
/// *bare structures* (label-erased graphs).
///
/// The single-edge structure is always selected (Example 4's fallback:
/// every query can at least be partitioned into edges).
pub fn select_features(
    structures: &[pis_graph::LabeledGraph],
    config: &GindexConfig,
) -> FeatureSet {
    let min_support =
        ((structures.len() as f64 * config.min_support_fraction).ceil() as usize).max(1);
    let gspan_cfg = GspanConfig {
        min_support,
        max_edges: config.max_edges.max(1),
        min_edges: 1,
        size_support_slope: config.size_support_slope,
        ..GspanConfig::default()
    };
    let mut patterns = mine(structures, &gspan_cfg);
    // Increasing size; larger support first within a size so the most
    // common structures are considered before their rarer peers.
    patterns.sort_by(|a, b| {
        a.graph
            .edge_count()
            .cmp(&b.graph.edge_count())
            .then(b.support.cmp(&a.support))
            .then(a.code.to_sequence().cmp(&b.code.to_sequence()))
    });

    let mut selected: Vec<MinedPattern> = Vec::new();
    for p in patterns {
        if selected.len() >= config.max_features {
            break;
        }
        if p.graph.edge_count() == 1
            || is_discriminative(&p, &selected, config.discriminative_ratio, structures.len())
        {
            selected.push(p);
        }
    }

    let mut set = FeatureSet::new();
    for p in selected {
        set.insert(p.code, p.support);
    }
    set
}

/// gIndex's discriminative test against already-selected sub-structures.
fn is_discriminative(
    candidate: &MinedPattern,
    selected: &[MinedPattern],
    gamma: f64,
    db_size: usize,
) -> bool {
    // Intersection of supporting sets over selected proper
    // sub-structures; starts as the whole database.
    let mut intersection: Option<Vec<GraphId>> = None;
    for s in selected {
        if s.graph.edge_count() >= candidate.graph.edge_count() {
            continue;
        }
        if !is_subgraph(&s.graph, &candidate.graph, IsoConfig::LABELED) {
            continue;
        }
        intersection = Some(match intersection {
            None => s.supporting.clone(),
            Some(cur) => intersect_sorted(&cur, &s.supporting),
        });
        if intersection.as_ref().is_some_and(Vec::is_empty) {
            break;
        }
    }
    let containing_subs = intersection.map_or(db_size, |v| v.len());
    containing_subs as f64 >= gamma * candidate.support as f64
}

/// Intersection of two sorted id lists.
fn intersect_sorted(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::graph::{cycle_graph, path_graph};
    use pis_graph::{Label, LabeledGraph};

    fn erased(gs: &[LabeledGraph]) -> Vec<LabeledGraph> {
        gs.iter().map(LabeledGraph::erase_labels).collect()
    }

    fn ring_db() -> Vec<LabeledGraph> {
        erased(&[
            cycle_graph(6, Label(0), Label(0)),
            cycle_graph(6, Label(0), Label(0)),
            cycle_graph(5, Label(0), Label(0)),
            path_graph(7, Label(0), Label(0)),
            path_graph(5, Label(0), Label(0)),
        ])
    }

    #[test]
    fn single_edge_always_selected() {
        let cfg = GindexConfig {
            discriminative_ratio: 1e9, // would reject everything else
            ..GindexConfig::default()
        };
        let set = select_features(&ring_db(), &cfg);
        assert_eq!(set.len(), 1);
        assert_eq!(set.min_edges(), Some(1));
    }

    #[test]
    fn gamma_one_keeps_all_frequent() {
        let cfg = GindexConfig {
            max_edges: 3,
            min_support_fraction: 0.3, // >= 2 of 5 graphs
            size_support_slope: 0.0,
            discriminative_ratio: 1.0,
            max_features: 1000,
        };
        let set = select_features(&ring_db(), &cfg);
        // All structures of <=3 edges in >=2 graphs: paths of 1,2,3
        // edges (cycles need >=4 edges to be distinguishable here).
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn discriminative_ratio_prunes_redundant_paths() {
        let lenient = GindexConfig {
            max_edges: 4,
            min_support_fraction: 0.2,
            size_support_slope: 0.0,
            discriminative_ratio: 1.0,
            max_features: 1000,
        };
        let strict = GindexConfig { discriminative_ratio: 2.0, ..lenient.clone() };
        let all = select_features(&ring_db(), &lenient);
        let pruned = select_features(&ring_db(), &strict);
        assert!(pruned.len() < all.len(), "γ=2 must prune ({} vs {})", pruned.len(), all.len());
        assert!(pruned.min_edges() == Some(1));
    }

    #[test]
    fn max_features_caps_selection() {
        let cfg = GindexConfig {
            max_edges: 4,
            min_support_fraction: 0.2,
            discriminative_ratio: 1.0,
            max_features: 2,
            size_support_slope: 0.0,
        };
        let set = select_features(&ring_db(), &cfg);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ring_structures_survive_discriminative_test() {
        // Rings are structurally distinctive: the 5/6-cycles contain
        // paths but only cycles contain cycles, so cycles should be
        // kept under a moderate gamma.
        let cfg = GindexConfig {
            max_edges: 6,
            min_support_fraction: 0.2,
            size_support_slope: 0.0,
            discriminative_ratio: 1.3,
            max_features: 1000,
        };
        let set = select_features(&ring_db(), &cfg);
        let has_cycle = set.iter().any(|f| {
            f.structure.edge_count() == f.structure.vertex_count() && f.structure.edge_count() >= 5
        });
        assert!(has_cycle, "expected a ring feature among {:?}", set.len());
    }

    #[test]
    fn intersect_sorted_basic() {
        let a: Vec<GraphId> = [1, 3, 5, 7].into_iter().map(GraphId).collect();
        let b: Vec<GraphId> = [2, 3, 4, 7, 9].into_iter().map(GraphId).collect();
        let i: Vec<u32> = intersect_sorted(&a, &b).into_iter().map(|g| g.0).collect();
        assert_eq!(i, vec![3, 7]);
        assert!(intersect_sorted(&a, &[]).is_empty());
    }
}
