//! gSpan pattern-growth frequent subgraph mining (reference \[15\]).
//!
//! Patterns grow one edge at a time along the rightmost path of their
//! minimum DFS code; non-canonical codes are pruned with the `is_min`
//! test, so every pattern is generated exactly once. Embedding lists are
//! maintained incrementally — extension candidates come from scanning
//! the graph neighborhoods of embedded rightmost-path vertices, the
//! standard transaction-setting formulation.
//!
//! Support is the number of *distinct graphs* containing the pattern.
//! Embedding lists are capped per graph
//! ([`GspanConfig::max_embeddings_per_graph`]) to bound memory on highly
//! symmetric structures (erased-label ring systems). The cap can
//! undercount support for *descendants* of a capped pattern — mining
//! then errs on the conservative side (reported support never exceeds
//! the true support; a generous default cap makes undercounts rare).

use std::collections::BTreeMap;

use pis_graph::canonical::{DfsCode, DfsEdge};
use pis_graph::{GraphId, LabeledGraph, VertexId};

/// Configuration for the gSpan miner.
#[derive(Clone, Debug)]
pub struct GspanConfig {
    /// Absolute minimum support (distinct graphs) for a pattern with
    /// `min_edges` edges. Combined with [`support_at`](GspanConfig::support_at)
    /// this yields gIndex's size-increasing support.
    pub min_support: usize,
    /// Largest pattern size in edges.
    pub max_edges: usize,
    /// Smallest pattern size reported (patterns below are still grown).
    pub min_edges: usize,
    /// Per-graph embedding-list cap (memory bound on symmetric graphs).
    pub max_embeddings_per_graph: usize,
    /// Size-increasing support curve: extra support demanded per edge
    /// beyond `min_edges` is `min_support * size_support_slope * (l -
    /// min_edges)`, rounded down. 0 = constant support (plain gSpan).
    pub size_support_slope: f64,
}

impl Default for GspanConfig {
    fn default() -> Self {
        GspanConfig {
            min_support: 2,
            max_edges: 5,
            min_edges: 1,
            max_embeddings_per_graph: 512,
            size_support_slope: 0.0,
        }
    }
}

impl GspanConfig {
    /// The support threshold for patterns of `edges` edges.
    pub fn support_at(&self, edges: usize) -> usize {
        let extra = self.min_support as f64
            * self.size_support_slope
            * edges.saturating_sub(self.min_edges) as f64;
        self.min_support + extra.floor() as usize
    }
}

/// A frequent pattern produced by the miner.
#[derive(Clone, Debug)]
pub struct MinedPattern {
    /// Minimum DFS code of the pattern.
    pub code: DfsCode,
    /// Canonical representative graph.
    pub graph: LabeledGraph,
    /// Number of distinct supporting graphs.
    pub support: usize,
    /// Sorted ids of the supporting graphs.
    pub supporting: Vec<GraphId>,
}

/// One embedding of the current pattern: `map[dfs_index]` is the image
/// vertex in graph `graph`.
#[derive(Clone, Debug)]
struct Emb {
    graph: u32,
    map: Vec<VertexId>,
}

/// Mines all frequent connected patterns of `db` under `config`.
///
/// Graphs are matched with full label semantics; pass label-erased
/// copies to mine bare structures (what PIS indexes).
pub fn mine(db: &[LabeledGraph], config: &GspanConfig) -> Vec<MinedPattern> {
    let mut out = Vec::new();
    if config.max_edges == 0 || db.is_empty() {
        return out;
    }
    // Seed patterns: single edges grouped by their minimal 1-edge code.
    let mut seeds: BTreeMap<DfsEdge, Vec<Emb>> = BTreeMap::new();
    for (gid, g) in db.iter().enumerate() {
        for e in g.edges() {
            for (u, v) in [(e.source, e.target), (e.target, e.source)] {
                let (lu, lv) = (g.vertex(u).label, g.vertex(v).label);
                // Only the orientation giving the minimal code; for equal
                // endpoint labels both orientations are distinct
                // embeddings of the same pattern.
                if lu > lv {
                    continue;
                }
                let edge = DfsEdge {
                    from: 0,
                    to: 1,
                    from_label: lu,
                    edge_label: e.attr.label,
                    to_label: lv,
                };
                seeds.entry(edge).or_default().push(Emb { graph: gid as u32, map: vec![u, v] });
            }
        }
    }
    let mut miner = Miner { db, config, out: &mut out };
    for (edge, embs) in seeds {
        let code = DfsCode { edges: vec![edge], root_label: edge.from_label };
        miner.grow(&code, embs);
    }
    out
}

struct Miner<'a> {
    db: &'a [LabeledGraph],
    config: &'a GspanConfig,
    out: &'a mut Vec<MinedPattern>,
}

impl Miner<'_> {
    fn grow(&mut self, code: &DfsCode, mut embs: Vec<Emb>) {
        let support_ids = distinct_graphs(&embs);
        if support_ids.len() < self.config.support_at(code.edge_count()) {
            return;
        }
        let pattern = code.to_graph();
        if code.edge_count() >= self.config.min_edges {
            self.out.push(MinedPattern {
                code: code.clone(),
                graph: pattern.clone(),
                support: support_ids.len(),
                supporting: support_ids,
            });
        }
        if code.edge_count() >= self.config.max_edges {
            return;
        }
        cap_per_graph(&mut embs, self.config.max_embeddings_per_graph);

        let rmpath = rightmost_path(code);
        let rm_idx = *rmpath.last().expect("rightmost path is never empty");
        let next_idx = pattern.vertex_count() as u32;

        // Group candidate extensions by code edge; BTreeMap iterates in
        // DFS-lexicographic order, matching gSpan's growth order.
        let mut groups: BTreeMap<DfsEdge, Vec<Emb>> = BTreeMap::new();
        for emb in &embs {
            let g = &self.db[emb.graph as usize];
            // Backward extensions from the rightmost vertex to
            // rightmost-path vertices not already connected in the
            // pattern.
            let rm_image = emb.map[rm_idx as usize];
            for &(w, ge) in g.neighbors(rm_image) {
                let Some(w_idx) = emb.map.iter().position(|&x| x == w) else {
                    continue;
                };
                let w_idx = w_idx as u32;
                if w_idx == rm_idx
                    || !rmpath.contains(&w_idx)
                    || pattern.has_edge(VertexId(rm_idx), VertexId(w_idx))
                {
                    continue;
                }
                let cand = DfsEdge {
                    from: rm_idx,
                    to: w_idx,
                    from_label: pattern.vertex(VertexId(rm_idx)).label,
                    edge_label: g.edge(ge).attr.label,
                    to_label: pattern.vertex(VertexId(w_idx)).label,
                };
                groups.entry(cand).or_default().push(emb.clone());
            }
            // Forward extensions from every rightmost-path vertex.
            for &p_idx in &rmpath {
                let u_image = emb.map[p_idx as usize];
                for &(w, ge) in g.neighbors(u_image) {
                    if emb.map.contains(&w) {
                        continue;
                    }
                    let cand = DfsEdge {
                        from: p_idx,
                        to: next_idx,
                        from_label: pattern.vertex(VertexId(p_idx)).label,
                        edge_label: g.edge(ge).attr.label,
                        to_label: g.vertex(w).label,
                    };
                    let mut map = emb.map.clone();
                    map.push(w);
                    groups.entry(cand).or_default().push(Emb { graph: emb.graph, map });
                }
            }
        }

        for (edge, child_embs) in groups {
            let mut child = code.clone();
            child.edges.push(edge);
            // Canonicality pruning: every pattern is grown from its
            // minimum code only.
            if !child.is_min() {
                continue;
            }
            self.grow(&child, child_embs);
        }
    }
}

/// Sorted distinct supporting graph ids of an embedding list.
fn distinct_graphs(embs: &[Emb]) -> Vec<GraphId> {
    let mut ids: Vec<u32> = embs.iter().map(|e| e.graph).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.into_iter().map(GraphId).collect()
}

/// Retains at most `cap` embeddings per graph (embedding lists of
/// symmetric patterns grow factorially; see module docs).
fn cap_per_graph(embs: &mut Vec<Emb>, cap: usize) {
    if cap == 0 {
        return;
    }
    let mut kept = 0usize;
    let mut last_graph = u32::MAX;
    let mut count = 0usize;
    for i in 0..embs.len() {
        let g = embs[i].graph;
        if g != last_graph {
            last_graph = g;
            count = 0;
        }
        if count < cap {
            embs.swap(kept, i);
            kept += 1;
            count += 1;
        }
    }
    embs.truncate(kept);
}

/// The rightmost path of a DFS code (DFS indices from the root to the
/// rightmost vertex).
fn rightmost_path(code: &DfsCode) -> Vec<u32> {
    let mut parent: Vec<Option<u32>> = vec![None; code.vertex_count()];
    let mut rightmost = 0u32;
    for e in &code.edges {
        if e.is_forward() {
            parent[e.to as usize] = Some(e.from);
            rightmost = rightmost.max(e.to);
        }
    }
    let mut path = vec![rightmost];
    let mut cur = rightmost;
    while let Some(p) = parent[cur as usize] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], 0);
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::canonical::min_dfs_code;
    use pis_graph::graph::{cycle_graph, path_graph};
    use pis_graph::iso::{is_subgraph, IsoConfig};
    use pis_graph::Label;

    fn erased(gs: &[LabeledGraph]) -> Vec<LabeledGraph> {
        gs.iter().map(LabeledGraph::erase_labels).collect()
    }

    #[test]
    fn single_edge_pattern_mined() {
        let db = erased(&[path_graph(3, Label(0), Label(0)), cycle_graph(4, Label(0), Label(0))]);
        let cfg = GspanConfig { min_support: 2, max_edges: 1, ..GspanConfig::default() };
        let patterns = mine(&db, &cfg);
        assert_eq!(patterns.len(), 1);
        assert_eq!(patterns[0].support, 2);
        assert_eq!(patterns[0].graph.edge_count(), 1);
        assert_eq!(patterns[0].supporting, vec![GraphId(0), GraphId(1)]);
    }

    #[test]
    fn mines_structures_of_mixed_db() {
        // Two 5-cycles and one 4-path (erased labels).
        let db = erased(&[
            cycle_graph(5, Label(0), Label(0)),
            cycle_graph(5, Label(1), Label(1)),
            path_graph(4, Label(0), Label(0)),
        ]);
        let cfg = GspanConfig { min_support: 2, max_edges: 5, ..GspanConfig::default() };
        let patterns = mine(&db, &cfg);
        // Paths of 1..=3 edges are in all 3 graphs; the 4-edge path and
        // anything cyclic only in the cycles.
        for p in &patterns {
            assert!(p.support >= 2);
            assert!(p.code.is_min(), "every emitted code must be canonical");
        }
        let with_support_3 = patterns.iter().filter(|p| p.support == 3).count();
        assert_eq!(with_support_3, 3, "paths with 1..=3 edges");
        // The full 5-cycle is frequent (both cycles contain it).
        let c5 = min_dfs_code(&cycle_graph(5, Label(0), Label(0)).erase_labels()).unwrap().code;
        assert!(patterns.iter().any(|p| p.code == c5));
    }

    #[test]
    fn supports_match_subgraph_iso() {
        let db = erased(&[
            cycle_graph(6, Label(0), Label(0)),
            cycle_graph(5, Label(0), Label(0)),
            path_graph(6, Label(0), Label(0)),
        ]);
        let cfg = GspanConfig { min_support: 1, max_edges: 4, ..GspanConfig::default() };
        for p in mine(&db, &cfg) {
            let by_iso = db.iter().filter(|g| is_subgraph(&p.graph, g, IsoConfig::LABELED)).count();
            assert_eq!(p.support, by_iso, "support mismatch for {:?}", p.code);
        }
    }

    #[test]
    fn no_duplicate_patterns() {
        let db = erased(&[cycle_graph(6, Label(0), Label(0)), cycle_graph(5, Label(0), Label(0))]);
        let cfg = GspanConfig { min_support: 1, max_edges: 5, ..GspanConfig::default() };
        let patterns = mine(&db, &cfg);
        let mut seqs: Vec<Vec<u32>> = patterns.iter().map(|p| p.code.to_sequence()).collect();
        let before = seqs.len();
        seqs.sort();
        seqs.dedup();
        assert_eq!(seqs.len(), before, "duplicate patterns mined");
    }

    #[test]
    fn labels_split_patterns() {
        // Same structure, different edge labels: mined separately.
        let db = vec![path_graph(2, Label(0), Label(1)), path_graph(2, Label(0), Label(2))];
        let cfg = GspanConfig { min_support: 1, max_edges: 1, ..GspanConfig::default() };
        let patterns = mine(&db, &cfg);
        assert_eq!(patterns.len(), 2);
        for p in &patterns {
            assert_eq!(p.support, 1);
        }
    }

    #[test]
    fn size_increasing_support_prunes_large_patterns() {
        let db = erased(&[
            cycle_graph(6, Label(0), Label(0)),
            cycle_graph(6, Label(0), Label(0)),
            path_graph(3, Label(0), Label(0)),
        ]);
        // At slope 0.5 and base 2: threshold is 2 at 1 edge, 2+1*k at
        // larger sizes: 3-edge patterns need 4 supporting graphs.
        let cfg = GspanConfig {
            min_support: 2,
            max_edges: 4,
            size_support_slope: 0.5,
            ..GspanConfig::default()
        };
        assert_eq!(cfg.support_at(1), 2);
        assert_eq!(cfg.support_at(3), 4);
        let patterns = mine(&db, &cfg);
        assert!(patterns.iter().all(|p| p.graph.edge_count() <= 2));
    }

    #[test]
    fn min_edges_suppresses_small_reports_but_growth_continues() {
        let db = erased(&[cycle_graph(4, Label(0), Label(0)), cycle_graph(4, Label(0), Label(0))]);
        let cfg =
            GspanConfig { min_support: 2, min_edges: 3, max_edges: 4, ..GspanConfig::default() };
        let patterns = mine(&db, &cfg);
        assert!(!patterns.is_empty());
        assert!(patterns.iter().all(|p| p.graph.edge_count() >= 3));
    }

    #[test]
    fn embedding_cap_keeps_mining_sound() {
        // A very tight cap still produces canonical, supported patterns.
        let db = erased(&[cycle_graph(6, Label(0), Label(0)), cycle_graph(6, Label(0), Label(0))]);
        let cfg = GspanConfig {
            min_support: 2,
            max_edges: 6,
            max_embeddings_per_graph: 2,
            ..GspanConfig::default()
        };
        for p in mine(&db, &cfg) {
            let by_iso = db.iter().filter(|g| is_subgraph(&p.graph, g, IsoConfig::LABELED)).count();
            assert!(p.support <= by_iso, "reported support must never exceed truth");
        }
    }

    #[test]
    fn rightmost_path_of_codes() {
        let c = min_dfs_code(&path_graph(4, Label(0), Label(0)).erase_labels()).unwrap().code;
        assert_eq!(rightmost_path(&c), vec![0, 1, 2, 3]);
        let c = min_dfs_code(&cycle_graph(4, Label(0), Label(0)).erase_labels()).unwrap().code;
        // Cycle code: forward chain 0-1-2-3 plus backward (3,0).
        assert_eq!(rightmost_path(&c), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_inputs() {
        assert!(mine(&[], &GspanConfig::default()).is_empty());
        let cfg = GspanConfig { max_edges: 0, ..GspanConfig::default() };
        assert!(mine(&erased(&[path_graph(3, Label(0), Label(0))]), &cfg).is_empty());
    }
}
