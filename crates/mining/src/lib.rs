//! Index feature selection for PIS (Section 4, step 1).
//!
//! The paper selects index structures "according to the criteria proposed
//! in GraphGrep \[12\] or gIndex \[16\]". This crate implements both, plus
//! the infrastructure they share:
//!
//! * [`gspan`] — a pattern-growth frequent-subgraph miner (gSpan,
//!   reference \[15\]) with DFS-code canonical pruning and size-increasing
//!   support;
//! * [`gindex`] — discriminative-feature selection on top of the miner
//!   (gIndex, reference \[16\]);
//! * [`paths`] — GraphGrep-style path features (reference \[12\]);
//! * [`exhaustive`] — every structure up to a size cap, the oracle
//!   feature source used by tests and the paper's Example 4 ("index all
//!   edges");
//! * [`feature`] — the deduplicated [`feature::FeatureSet`] consumed by
//!   `pis-index`.
//!
//! PIS hashes fragments by *bare structure*, so callers mine on
//! label-erased graphs; the miner itself is label-aware and reusable.

#![forbid(unsafe_code)]

pub mod exhaustive;
pub mod feature;
pub mod gindex;
pub mod gspan;
pub mod paths;

pub use feature::{Feature, FeatureId, FeatureSet};
pub use gindex::{select_features, GindexConfig};
pub use gspan::{mine, GspanConfig, MinedPattern};
