//! GraphGrep-style path features (reference \[12\]).
//!
//! GraphGrep indexes all label paths up to a length cap. PIS hashes by
//! *bare structure*, so on the structural level the path feature family
//! collapses to one structure per length — a deliberately weak feature
//! source that the A4 ablation compares against gIndex's mined
//! structures (the paper: "PIS can take paths \[12\] as features to build
//! the index").

use pis_graph::canonical::min_dfs_code;
use pis_graph::graph::path_graph;
use pis_graph::iso::{is_subgraph, IsoConfig};
use pis_graph::{Label, LabeledGraph};

use crate::feature::FeatureSet;

/// Builds the path feature set: bare path structures with 1..=`max_len`
/// edges, with supports counted against `structures` (label-erased
/// database graphs).
pub fn path_features(structures: &[LabeledGraph], max_len: usize) -> FeatureSet {
    let mut set = FeatureSet::new();
    for len in 1..=max_len {
        let p = path_graph(len + 1, Label::ERASED, Label::ERASED);
        let support = structures.iter().filter(|g| is_subgraph(&p, g, IsoConfig::LABELED)).count();
        if support == 0 && len > 1 {
            // No graph is long enough; longer paths cannot match either.
            break;
        }
        let code = min_dfs_code(&p).expect("paths are connected").code;
        set.insert(code, support);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::graph::cycle_graph;

    #[test]
    fn one_feature_per_length() {
        let db: Vec<LabeledGraph> = vec![
            cycle_graph(6, Label(0), Label(0)).erase_labels(),
            path_graph(4, Label(0), Label(0)).erase_labels(),
        ];
        let set = path_features(&db, 4);
        assert_eq!(set.len(), 4);
        let sizes: Vec<usize> = set.iter().map(crate::Feature::edge_count).collect();
        assert_eq!(sizes, vec![1, 2, 3, 4]);
    }

    #[test]
    fn supports_are_containment_counts() {
        let db: Vec<LabeledGraph> = vec![
            cycle_graph(6, Label(0), Label(0)).erase_labels(), // contains paths up to 5 edges
            path_graph(3, Label(0), Label(0)).erase_labels(),  // up to 2 edges
        ];
        let set = path_features(&db, 3);
        let by_size: Vec<(usize, usize)> =
            set.iter().map(|f| (f.edge_count(), f.support)).collect();
        assert_eq!(by_size, vec![(1, 2), (2, 2), (3, 1)]);
    }

    #[test]
    fn stops_when_paths_outgrow_database() {
        let db: Vec<LabeledGraph> = vec![path_graph(3, Label(0), Label(0)).erase_labels()];
        let set = path_features(&db, 10);
        // 2-edge graphs support paths of 1 and 2 edges; a 3-edge path
        // has support 0 and terminates the family.
        assert!(set.len() <= 3);
        assert!(set.iter().all(|f| f.edge_count() <= 3));
    }

    #[test]
    fn empty_database_yields_single_unsupported_edge() {
        let set = path_features(&[], 3);
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap().support, 0);
    }
}
