//! Mining in its native labeled setting: gSpan over synthetic molecules
//! with full atom/bond labels (the paper mines *structures*, but the
//! miner is a general substrate — these tests pin down its behavior on
//! labeled transaction data).

use pis_datasets::MoleculeGenerator;
use pis_graph::iso::{is_subgraph, IsoConfig};
use pis_graph::LabeledGraph;
use pis_mining::{mine, GspanConfig};

fn molecule_db(n: usize, seed: u64) -> Vec<LabeledGraph> {
    MoleculeGenerator::default().database(n, seed)
}

#[test]
fn labeled_supports_are_exact() {
    let db = molecule_db(25, 11);
    let cfg = GspanConfig { min_support: 8, max_edges: 3, ..GspanConfig::default() };
    let patterns = mine(&db, &cfg);
    assert!(!patterns.is_empty(), "carbon-carbon chains must be frequent");
    for p in &patterns {
        let truth = db.iter().filter(|g| is_subgraph(&p.graph, g, IsoConfig::LABELED)).count();
        assert_eq!(p.support, truth, "support mismatch for {:?}", p.code);
        assert!(p.support >= 8);
        assert_eq!(p.supporting.len(), p.support);
    }
}

#[test]
fn labeled_patterns_are_canonical_and_distinct() {
    let db = molecule_db(15, 3);
    let cfg = GspanConfig { min_support: 5, max_edges: 4, ..GspanConfig::default() };
    let patterns = mine(&db, &cfg);
    let mut seqs: Vec<Vec<u32>> = patterns.iter().map(|p| p.code.to_sequence()).collect();
    let n = seqs.len();
    seqs.sort();
    seqs.dedup();
    assert_eq!(seqs.len(), n, "duplicate labeled patterns");
    for p in &patterns {
        assert!(p.code.is_min());
    }
}

#[test]
fn labeled_mining_finds_more_than_erased() {
    // Labels split structural classes: labeled mining at minsup 1 must
    // produce at least as many patterns as structure mining.
    let db = molecule_db(6, 9);
    let erased: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
    let cfg = GspanConfig { min_support: 1, max_edges: 2, ..GspanConfig::default() };
    let labeled = mine(&db, &cfg);
    let structural = mine(&erased, &cfg);
    assert!(
        labeled.len() >= structural.len(),
        "labeled {} vs structural {}",
        labeled.len(),
        structural.len()
    );
}

#[test]
fn carbon_chain_is_the_most_frequent_two_edge_pattern() {
    // In carbon-dominated molecules, the C-C-C single-bond chain should
    // top the 2-edge support ranking.
    let db = molecule_db(40, 21);
    let cfg = GspanConfig { min_support: 2, max_edges: 2, min_edges: 2, ..GspanConfig::default() };
    let patterns = mine(&db, &cfg);
    let best = patterns.iter().max_by_key(|p| p.support).expect("some 2-edge pattern is frequent");
    // All carbon vertices (label 0).
    assert!(best.graph.vertex_ids().all(|v| best.graph.vertex(v).label.0 == 0));
}
