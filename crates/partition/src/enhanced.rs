//! `EnhancedGreedy(k)` (Section 5, Theorem 3).
//!
//! Instead of one maximum-weight node per round, each round selects a
//! *maximum-weight independent set of at most `k` nodes* among the
//! remaining nodes, then removes the chosen nodes and all their
//! neighbors. At `k = 1` this is exactly Algorithm 1; larger `k` buys a
//! better worst-case ratio at `O(cᵏnᵏ)` cost. The paper reports `k = 2`
//! performs comparably to plain greedy on real data — ablation A1
//! measures exactly that.

use crate::overlap::OverlapGraph;

/// Runs EnhancedGreedy(k); returns selected node indices in selection
/// order.
///
/// # Panics
/// Panics if `k == 0`.
pub fn enhanced_greedy_mwis(graph: &OverlapGraph, k: usize) -> Vec<usize> {
    assert!(k >= 1, "EnhancedGreedy requires k >= 1");
    let n = graph.len();
    let mut alive = vec![true; n];
    let mut selection = Vec::new();
    loop {
        let remaining: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
        if remaining.is_empty() {
            break;
        }
        // Best independent <=k-subset of the remaining nodes.
        let mut best: Vec<usize> = Vec::new();
        let mut best_weight = f64::NEG_INFINITY;
        let mut current: Vec<usize> = Vec::new();
        enumerate_k_sets(graph, &remaining, 0, k, &mut current, &mut |set| {
            let w: f64 = set.iter().map(|&v| graph.weight(v)).sum();
            if w > best_weight {
                best_weight = w;
                best = set.to_vec();
            }
        });
        if best.is_empty() {
            break;
        }
        for &v in &best {
            selection.push(v);
            alive[v] = false;
            for &w in graph.neighbors(v) {
                alive[w as usize] = false;
            }
        }
    }
    debug_assert!(graph.is_independent(&selection));
    selection
}

/// Enumerates all non-empty independent subsets of `remaining` with at
/// most `k` elements (lexicographic order over `remaining`).
fn enumerate_k_sets(
    graph: &OverlapGraph,
    remaining: &[usize],
    start: usize,
    k: usize,
    current: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    for i in start..remaining.len() {
        let v = remaining[i];
        if current.iter().any(|&u| graph.neighbors(u).contains(&(v as u32))) {
            continue;
        }
        current.push(v);
        f(current);
        if current.len() < k {
            enumerate_k_sets(graph, remaining, i + 1, k, current, f);
        }
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mwis;
    use crate::selection_weight;

    #[test]
    fn k1_equals_greedy() {
        let g = OverlapGraph::from_parts(
            vec![4.0, 2.0, 1.0, 10.0, 6.0, 7.0, 3.0],
            (0..6).map(|i| (i, i + 1)).collect(),
        );
        let a = enhanced_greedy_mwis(&g, 1);
        let mut b = greedy_mwis(&g);
        let mut a2 = a.clone();
        a2.sort_unstable();
        b.sort_unstable();
        assert_eq!(a2, b);
    }

    #[test]
    fn k2_beats_greedy_on_star() {
        // Hub 2.0 vs three leaves 1.5: greedy takes the hub; k=2 takes
        // two leaves in round one (3.0 > 2.0), then the third.
        let g = OverlapGraph::from_parts(vec![2.0, 1.5, 1.5, 1.5], vec![(0, 1), (0, 2), (0, 3)]);
        let greedy = greedy_mwis(&g);
        let enhanced = enhanced_greedy_mwis(&g, 2);
        assert!(selection_weight(&g, &enhanced) > selection_weight(&g, &greedy));
        assert_eq!(selection_weight(&g, &enhanced), 4.5);
    }

    #[test]
    fn k_larger_than_graph_is_exact_on_small_instances() {
        let g = OverlapGraph::from_parts(vec![1.0, 2.0, 3.0, 2.5], vec![(0, 1), (1, 2), (2, 3)]);
        let sel = enhanced_greedy_mwis(&g, 4);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        // Optimal: {2, 0} (weight 4) vs {1, 3} (4.5) -> {1, 3}.
        assert_eq!(sorted, vec![1, 3]);
    }

    #[test]
    fn independence_always_holds() {
        let g = OverlapGraph::from_parts(
            vec![3.0, 3.0, 3.0, 3.0, 3.0],
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        );
        for k in 1..=3 {
            let sel = enhanced_greedy_mwis(&g, k);
            assert!(g.is_independent(&sel), "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn k_zero_rejected() {
        let g = OverlapGraph::from_parts(vec![1.0], vec![]);
        let _ = enhanced_greedy_mwis(&g, 0);
    }

    #[test]
    fn empty_graph() {
        let g = OverlapGraph::from_parts(vec![], vec![]);
        assert!(enhanced_greedy_mwis(&g, 2).is_empty());
    }
}
