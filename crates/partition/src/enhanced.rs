//! `EnhancedGreedy(k)` (Section 5, Theorem 3), mask-native.
//!
//! Instead of one maximum-weight node per round, each round selects a
//! *maximum-weight independent set of at most `k` nodes* among the
//! remaining nodes, then removes the chosen nodes and all their
//! neighbors. At `k = 1` this is exactly Algorithm 1; larger `k` buys a
//! better worst-case ratio at `O(cᵏnᵏ)` cost. The paper reports `k = 2`
//! performs comparably to plain greedy on real data — ablation A1
//! measures exactly that.
//!
//! The subset enumeration tracks its members in a bit mask, so the
//! inner independence test — "is candidate `v` adjacent to anything
//! already in the set?" — is one `neighbor_mask(v) & members` AND
//! instead of a linear `contains` per member. Selections are
//! byte-identical to [`crate::reference::enhanced_greedy_mwis_ref`].

use crate::overlap::OverlapGraph;
use crate::scratch::{mask_clear, mask_or, mask_set, masks_intersect, PartitionScratch, BITS};

/// Runs EnhancedGreedy(k); returns selected node indices in selection
/// order.
///
/// # Panics
/// Panics if `k == 0`.
pub fn enhanced_greedy_mwis(graph: &OverlapGraph, k: usize) -> Vec<usize> {
    let mut selection = Vec::new();
    enhanced_greedy_mwis_with(graph, k, &mut PartitionScratch::new(), &mut selection);
    selection
}

/// [`enhanced_greedy_mwis`] with caller-owned working memory:
/// `selection` is cleared and filled in selection order.
///
/// # Panics
/// Panics if `k == 0`.
pub fn enhanced_greedy_mwis_with(
    graph: &OverlapGraph,
    k: usize,
    scratch: &mut PartitionScratch,
    selection: &mut Vec<usize>,
) {
    assert!(k >= 1, "EnhancedGreedy requires k >= 1");
    selection.clear();
    let wpr = graph.words_per_row();
    scratch.covered.clear();
    scratch.covered.resize(wpr, 0);
    scratch.members.clear();
    scratch.members.resize(wpr, 0);
    loop {
        scratch.remaining.clear();
        for wi in 0..wpr {
            let mut bits = !scratch.covered[wi] & graph.full_row_word(wi);
            while bits != 0 {
                scratch.remaining.push(wi * BITS + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        if scratch.remaining.is_empty() {
            break;
        }
        // Best independent <=k-subset of the remaining nodes.
        scratch.round_best.clear();
        let mut best_weight = f64::NEG_INFINITY;
        scratch.current.clear();
        enumerate_k_sets(
            graph,
            &scratch.remaining,
            0,
            k,
            0.0,
            &mut scratch.members,
            &mut scratch.current,
            &mut scratch.round_best,
            &mut best_weight,
        );
        if scratch.round_best.is_empty() {
            break;
        }
        for &v in &scratch.round_best {
            selection.push(v);
            mask_set(&mut scratch.covered, v);
            mask_or(&mut scratch.covered, graph.neighbor_mask(v));
        }
    }
    debug_assert!(graph.is_independent(selection));
}

/// Enumerates all non-empty independent subsets of `remaining` with at
/// most `k` elements (lexicographic order over `remaining`), keeping the
/// first strictly-best by weight. `members` mirrors `current` as a bit
/// mask; `weight` is the running sum of `current`.
#[allow(clippy::too_many_arguments)] // recursion over split scratch fields
fn enumerate_k_sets(
    graph: &OverlapGraph,
    remaining: &[usize],
    start: usize,
    k: usize,
    weight: f64,
    members: &mut [u64],
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
    best_weight: &mut f64,
) {
    for i in start..remaining.len() {
        let v = remaining[i];
        if masks_intersect(graph.neighbor_mask(v), members) {
            continue;
        }
        current.push(v);
        mask_set(members, v);
        let w = weight + graph.weight(v);
        if w > *best_weight {
            *best_weight = w;
            best.clone_from(current);
        }
        if current.len() < k {
            enumerate_k_sets(graph, remaining, i + 1, k, w, members, current, best, best_weight);
        }
        current.pop();
        mask_clear(members, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mwis;
    use crate::selection_weight;

    #[test]
    fn k1_equals_greedy() {
        let g = OverlapGraph::from_parts(
            vec![4.0, 2.0, 1.0, 10.0, 6.0, 7.0, 3.0],
            (0..6).map(|i| (i, i + 1)).collect(),
        );
        let a = enhanced_greedy_mwis(&g, 1);
        let mut b = greedy_mwis(&g);
        let mut a2 = a.clone();
        a2.sort_unstable();
        b.sort_unstable();
        assert_eq!(a2, b);
    }

    #[test]
    fn k2_beats_greedy_on_star() {
        // Hub 2.0 vs three leaves 1.5: greedy takes the hub; k=2 takes
        // two leaves in round one (3.0 > 2.0), then the third.
        let g = OverlapGraph::from_parts(vec![2.0, 1.5, 1.5, 1.5], vec![(0, 1), (0, 2), (0, 3)]);
        let greedy = greedy_mwis(&g);
        let enhanced = enhanced_greedy_mwis(&g, 2);
        assert!(selection_weight(&g, &enhanced) > selection_weight(&g, &greedy));
        assert_eq!(selection_weight(&g, &enhanced), 4.5);
    }

    #[test]
    fn k_larger_than_graph_is_exact_on_small_instances() {
        let g = OverlapGraph::from_parts(vec![1.0, 2.0, 3.0, 2.5], vec![(0, 1), (1, 2), (2, 3)]);
        let sel = enhanced_greedy_mwis(&g, 4);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        // Optimal: {2, 0} (weight 4) vs {1, 3} (4.5) -> {1, 3}.
        assert_eq!(sorted, vec![1, 3]);
    }

    #[test]
    fn independence_always_holds() {
        let g = OverlapGraph::from_parts(
            vec![3.0, 3.0, 3.0, 3.0, 3.0],
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        );
        for k in 1..=3 {
            let sel = enhanced_greedy_mwis(&g, k);
            assert!(g.is_independent(&sel), "k={k}");
        }
    }

    #[test]
    fn multi_word_instances_stay_independent() {
        // A 150-node path needs 3-word masks; k=2 must still emit an
        // independent set that covers every other node.
        let g = OverlapGraph::from_parts(vec![1.0; 150], (0..149).map(|i| (i, i + 1)).collect());
        let sel = enhanced_greedy_mwis(&g, 2);
        assert!(g.is_independent(&sel));
        assert_eq!(sel.len(), 75);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn k_zero_rejected() {
        let g = OverlapGraph::from_parts(vec![1.0], vec![]);
        let _ = enhanced_greedy_mwis(&g, 0);
    }

    #[test]
    fn empty_graph() {
        let g = OverlapGraph::from_parts(vec![], vec![]);
        assert!(enhanced_greedy_mwis(&g, 2).is_empty());
    }
}
