//! Exact maximum weighted independent set, mask-native.
//!
//! Branch-and-bound over the node set: branch on the highest-degree
//! remaining node (include — dropping its closed neighborhood — or
//! exclude), pruning when the current weight plus all remaining weight
//! cannot beat the incumbent. Exponential worst case; intended for the
//! small overlapping-relation graphs of real queries (tens of nodes) and
//! for measuring the greedy algorithms' optimality ratio (ablation A1).
//!
//! The alive set is a multi-word mask held in a depth-indexed arena:
//! the bound and the pivot come from one bit-scan (popcounting
//! `neighbor_mask(v) & alive` per live node), and including the pivot
//! removes its closed neighborhood with a single word-parallel AND-NOT
//! into the next arena level. Selections are byte-identical to
//! [`crate::reference::exact_mwis_ref`] — the pivot rule (`max_by_key`
//! keeps the *last* maximum) and the floating-point summation order are
//! both preserved.

use pis_graph::budget::{BudgetState, CheckpointSite};

use crate::overlap::OverlapGraph;
use crate::scratch::{mask_and_count, mask_clear, PartitionScratch, BITS};

/// Upper bound on the instance size accepted by [`exact_mwis`].
pub const EXACT_MWIS_MAX_NODES: usize = 128;

/// Computes an exact MWIS; returns selected node indices (sorted).
///
/// # Panics
/// Panics if the graph has more than [`EXACT_MWIS_MAX_NODES`] nodes.
pub fn exact_mwis(graph: &OverlapGraph) -> Vec<usize> {
    let mut selection = Vec::new();
    exact_mwis_with(graph, &mut PartitionScratch::new(), &mut selection);
    selection
}

/// [`exact_mwis`] with caller-owned working memory: `selection` is
/// cleared and filled with the optimal node indices (sorted).
///
/// # Panics
/// Panics if the graph has more than [`EXACT_MWIS_MAX_NODES`] nodes.
pub fn exact_mwis_with(
    graph: &OverlapGraph,
    scratch: &mut PartitionScratch,
    selection: &mut Vec<usize>,
) {
    let completed = exact_mwis_budgeted_with(graph, scratch, selection, BudgetState::unlimited());
    debug_assert!(completed, "the unlimited budget never interrupts the exact solver");
}

/// [`exact_mwis_with`] under a query budget: charges one
/// [`CheckpointSite::Partition`] unit per branch-and-bound node and
/// returns whether the search ran to optimality. On `false` the
/// selection holds the incumbent found so far — callers degrade to a
/// greedy solve instead of trusting it.
///
/// # Panics
/// Panics if the graph has more than [`EXACT_MWIS_MAX_NODES`] nodes.
pub fn exact_mwis_budgeted_with(
    graph: &OverlapGraph,
    scratch: &mut PartitionScratch,
    selection: &mut Vec<usize>,
    budget: &BudgetState,
) -> bool {
    assert!(
        graph.len() <= EXACT_MWIS_MAX_NODES,
        "exact MWIS capped at {EXACT_MWIS_MAX_NODES} nodes ({} given)",
        graph.len()
    );
    let wpr = graph.words_per_row();
    scratch.stack.clear();
    scratch.stack.resize(wpr, 0);
    for wi in 0..wpr {
        scratch.stack[wi] = graph.full_row_word(wi);
    }
    scratch.current.clear();
    scratch.incumbent.clear();
    let mut best_weight = f64::NEG_INFINITY;
    let completed = branch(
        graph,
        &mut scratch.stack,
        0,
        0.0,
        &mut scratch.current,
        &mut scratch.incumbent,
        &mut best_weight,
        budget,
    );
    selection.clear();
    selection.extend_from_slice(&scratch.incumbent);
    selection.sort_unstable();
    completed
}

/// One branch-and-bound node; the alive mask lives at arena level
/// `depth` (`stack[depth*wpr..(depth+1)*wpr]`). Excluding the pivot
/// mutates the current level in place and recurses at the same depth —
/// every call removes at least one vertex, so nesting is bounded by the
/// node count. Returns `false` when the budget tripped and the search
/// unwound without exploring its remaining subtree.
#[allow(clippy::too_many_arguments)]
fn branch(
    graph: &OverlapGraph,
    stack: &mut Vec<u64>,
    depth: usize,
    current_weight: f64,
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
    best_weight: &mut f64,
    budget: &BudgetState,
) -> bool {
    if !budget.checkpoint(CheckpointSite::Partition, 1) {
        return false;
    }
    let wpr = graph.words_per_row();
    // Bound first, from a cheap weight-only bit-scan (ascending node
    // order, like the reference): even taking every remaining node
    // cannot beat the incumbent. Bound-pruned calls dominate the search
    // tree, so the per-node degree popcounts below must not run here.
    let mut remaining_weight = 0.0;
    {
        let alive = &stack[depth * wpr..(depth + 1) * wpr];
        for (wi, &word) in alive.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let v = wi * BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                remaining_weight += graph.weight(v);
            }
        }
    }
    if current_weight + remaining_weight <= *best_weight {
        return true;
    }
    // Pivot: highest alive-degree node via AND+popcount per live node
    // (`>=` keeps the last maximum, matching the reference's
    // `max_by_key`).
    let mut pivot: Option<usize> = None;
    let mut pivot_degree = 0;
    {
        let alive = &stack[depth * wpr..(depth + 1) * wpr];
        for (wi, &word) in alive.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let v = wi * BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let degree = mask_and_count(graph.neighbor_mask(v), alive);
                if pivot.is_none() || degree >= pivot_degree {
                    pivot = Some(v);
                    pivot_degree = degree;
                }
            }
        }
    }
    let Some(v) = pivot else {
        if current_weight > *best_weight {
            *best_weight = current_weight;
            best.clone_from(current);
        }
        return true;
    };

    // Include v: the next arena level gets alive minus v's closed
    // neighborhood in one AND-NOT pass.
    if stack.len() < (depth + 2) * wpr {
        stack.resize((depth + 2) * wpr, 0);
    }
    let (level, rest) = stack[depth * wpr..].split_at_mut(wpr);
    let neighbors = graph.neighbor_mask(v);
    for wi in 0..wpr {
        rest[wi] = level[wi] & !neighbors[wi];
    }
    mask_clear(&mut rest[..wpr], v);
    current.push(v);
    let completed = branch(
        graph,
        stack,
        depth + 1,
        current_weight + graph.weight(v),
        current,
        best,
        best_weight,
        budget,
    );
    current.pop();
    if !completed {
        return false;
    }

    // Exclude v: drop it from the current level and continue in place.
    mask_clear(&mut stack[depth * wpr..(depth + 1) * wpr], v);
    branch(graph, stack, depth, current_weight, current, best, best_weight, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mwis;
    use crate::{optimality_ratio, selection_weight};

    #[test]
    fn path_instance() {
        let g = OverlapGraph::from_parts(
            vec![4.0, 2.0, 1.0, 10.0, 6.0, 7.0, 3.0],
            (0..6).map(|i| (i, i + 1)).collect(),
        );
        let opt = exact_mwis(&g);
        assert!(g.is_independent(&opt));
        assert_eq!(selection_weight(&g, &opt), 21.0); // {w1, w4, w6}
    }

    #[test]
    fn star_instance_prefers_leaves() {
        let g = OverlapGraph::from_parts(vec![2.0, 1.5, 1.5, 1.5], vec![(0, 1), (0, 2), (0, 3)]);
        let opt = exact_mwis(&g);
        assert_eq!(opt, vec![1, 2, 3]);
    }

    #[test]
    fn greedy_never_beats_exact() {
        // Cross-check on a batch of small pseudo-random graphs.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let n = 3 + (next() % 8) as usize;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push(1.0 + (next() % 100) as f64 / 10.0);
            }
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 35 {
                        edges.push((u, v));
                    }
                }
            }
            let g = OverlapGraph::from_parts(weights, edges);
            let greedy = greedy_mwis(&g);
            let opt = exact_mwis(&g);
            let ratio = optimality_ratio(&g, &greedy, &opt);
            assert!((0.0..=1.0 + 1e-12).contains(&ratio), "ratio {ratio}");
            assert!(g.is_independent(&opt));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let g = OverlapGraph::from_parts(vec![], vec![]);
        assert!(exact_mwis(&g).is_empty());
        let g = OverlapGraph::from_parts(vec![5.0], vec![]);
        assert_eq!(exact_mwis(&g), vec![0]);
    }

    #[test]
    fn multi_word_clique_past_64_nodes() {
        // 70 clique nodes need two mask words; the optimum picks the
        // single heaviest node plus the two isolated ones. (A clique
        // keeps the weak remaining-weight bound linear — sparse graphs
        // this size would blow the branch-and-bound up.)
        let n = 70;
        let mut weights: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.1).collect();
        weights.push(0.5);
        weights.push(0.0);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        let g = OverlapGraph::from_parts(weights, edges);
        let opt = exact_mwis(&g);
        assert!(g.is_independent(&opt));
        assert_eq!(opt, vec![69, 70, 71]);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn oversized_instance_rejected() {
        let g = OverlapGraph::from_parts(vec![1.0; 129], vec![]);
        let _ = exact_mwis(&g);
    }

    #[test]
    fn budget_trip_unwinds_and_scratch_stays_usable() {
        use pis_graph::budget::QueryBudget;
        let g = OverlapGraph::from_parts(
            vec![4.0, 2.0, 1.0, 10.0, 6.0, 7.0, 3.0],
            (0..6).map(|i| (i, i + 1)).collect(),
        );
        let state =
            BudgetState::new(&QueryBudget { node_limit: Some(2), ..QueryBudget::default() });
        let mut scratch = PartitionScratch::new();
        let mut sel = Vec::new();
        let completed = exact_mwis_budgeted_with(&g, &mut scratch, &mut sel, &state);
        assert!(!completed, "a 2-node budget cannot finish this instance");
        assert!(state.is_tripped());
        assert_eq!(state.trip_site(), Some(CheckpointSite::Partition));
        // The same scratch re-solves to optimality once unconstrained.
        let mut sel2 = Vec::new();
        assert!(exact_mwis_budgeted_with(&g, &mut scratch, &mut sel2, BudgetState::unlimited()));
        assert_eq!(sel2, exact_mwis(&g));
    }

    #[test]
    fn zero_weight_nodes_do_not_hurt() {
        let g = OverlapGraph::from_parts(vec![0.0, 3.0, 0.0], vec![(0, 1), (1, 2)]);
        let opt = exact_mwis(&g);
        assert_eq!(selection_weight(&g, &opt), 3.0);
    }
}
