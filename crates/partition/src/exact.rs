//! Exact maximum weighted independent set.
//!
//! Branch-and-bound over the node set: branch on the highest-degree
//! remaining node (include — dropping its closed neighborhood — or
//! exclude), pruning when the current weight plus all remaining weight
//! cannot beat the incumbent. Exponential worst case; intended for the
//! small overlapping-relation graphs of real queries (tens of nodes) and
//! for measuring the greedy algorithms' optimality ratio (ablation A1).

use crate::overlap::OverlapGraph;

/// Upper bound on the instance size accepted by [`exact_mwis`].
pub const EXACT_MWIS_MAX_NODES: usize = 128;

/// Computes an exact MWIS; returns selected node indices (sorted).
///
/// # Panics
/// Panics if the graph has more than [`EXACT_MWIS_MAX_NODES`] nodes.
pub fn exact_mwis(graph: &OverlapGraph) -> Vec<usize> {
    assert!(
        graph.len() <= EXACT_MWIS_MAX_NODES,
        "exact MWIS capped at {EXACT_MWIS_MAX_NODES} nodes ({} given)",
        graph.len()
    );
    let mut best: Vec<usize> = Vec::new();
    let mut best_weight = f64::NEG_INFINITY;
    let mut current: Vec<usize> = Vec::new();
    let alive: Vec<bool> = vec![true; graph.len()];
    branch(graph, alive, 0.0, &mut current, &mut best, &mut best_weight);
    best.sort_unstable();
    best
}

fn branch(
    graph: &OverlapGraph,
    alive: Vec<bool>,
    current_weight: f64,
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
    best_weight: &mut f64,
) {
    // Bound: even taking every remaining node cannot beat the incumbent.
    let remaining_weight: f64 =
        (0..graph.len()).filter(|&v| alive[v]).map(|v| graph.weight(v)).sum();
    if current_weight + remaining_weight <= *best_weight {
        return;
    }
    // Pick the highest-degree remaining node to branch on.
    let pivot = (0..graph.len())
        .filter(|&v| alive[v])
        .max_by_key(|&v| graph.neighbors(v).iter().filter(|&&w| alive[w as usize]).count());
    let Some(v) = pivot else {
        if current_weight > *best_weight {
            *best_weight = current_weight;
            *best = current.clone();
        }
        return;
    };

    // Include v.
    let mut with_v = alive.clone();
    with_v[v] = false;
    for &w in graph.neighbors(v) {
        with_v[w as usize] = false;
    }
    current.push(v);
    branch(graph, with_v, current_weight + graph.weight(v), current, best, best_weight);
    current.pop();

    // Exclude v.
    let mut without_v = alive;
    without_v[v] = false;
    branch(graph, without_v, current_weight, current, best, best_weight);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mwis;
    use crate::{optimality_ratio, selection_weight};

    #[test]
    fn path_instance() {
        let g = OverlapGraph::from_parts(
            vec![4.0, 2.0, 1.0, 10.0, 6.0, 7.0, 3.0],
            (0..6).map(|i| (i, i + 1)).collect(),
        );
        let opt = exact_mwis(&g);
        assert!(g.is_independent(&opt));
        assert_eq!(selection_weight(&g, &opt), 21.0); // {w1, w4, w6}
    }

    #[test]
    fn star_instance_prefers_leaves() {
        let g = OverlapGraph::from_parts(vec![2.0, 1.5, 1.5, 1.5], vec![(0, 1), (0, 2), (0, 3)]);
        let opt = exact_mwis(&g);
        assert_eq!(opt, vec![1, 2, 3]);
    }

    #[test]
    fn greedy_never_beats_exact() {
        // Cross-check on a batch of small pseudo-random graphs.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let n = 3 + (next() % 8) as usize;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push(1.0 + (next() % 100) as f64 / 10.0);
            }
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 35 {
                        edges.push((u, v));
                    }
                }
            }
            let g = OverlapGraph::from_parts(weights, edges);
            let greedy = greedy_mwis(&g);
            let opt = exact_mwis(&g);
            let ratio = optimality_ratio(&g, &greedy, &opt);
            assert!((0.0..=1.0 + 1e-12).contains(&ratio), "ratio {ratio}");
            assert!(g.is_independent(&opt));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let g = OverlapGraph::from_parts(vec![], vec![]);
        assert!(exact_mwis(&g).is_empty());
        let g = OverlapGraph::from_parts(vec![5.0], vec![]);
        assert_eq!(exact_mwis(&g), vec![0]);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn oversized_instance_rejected() {
        let g = OverlapGraph::from_parts(vec![1.0; 129], vec![]);
        let _ = exact_mwis(&g);
    }

    #[test]
    fn zero_weight_nodes_do_not_hurt() {
        let g = OverlapGraph::from_parts(vec![0.0, 3.0, 0.0], vec![(0, 1), (1, 2)]);
        let opt = exact_mwis(&g);
        assert_eq!(selection_weight(&g, &opt), 3.0);
    }
}
