//! `Greedy()` — Algorithm 1 of the paper, mask-native.
//!
//! Repeatedly selects the maximum-weight remaining node and removes it
//! together with its neighbors. Runs in `O(c·n)` scans where `c` is the
//! maximum independent-set size, with optimality ratio `1/c`
//! (Theorem 2). Ties break toward the smaller node index so results are
//! deterministic, byte-identical to
//! [`crate::reference::greedy_mwis_ref`].
//!
//! The removed set lives in a covered-vertex mask: each round's scan
//! iterates only the words with live bits, and retiring the chosen node
//! with its whole neighborhood is one word-parallel
//! `covered |= neighbor_mask(v)` — no per-neighbor loop.

use crate::overlap::OverlapGraph;
use crate::scratch::{mask_or, mask_set, PartitionScratch, BITS};

/// Runs Algorithm 1; returns the selected node indices in selection
/// order.
pub fn greedy_mwis(graph: &OverlapGraph) -> Vec<usize> {
    let mut selection = Vec::new();
    greedy_mwis_with(graph, &mut PartitionScratch::new(), &mut selection);
    selection
}

/// [`greedy_mwis`] with caller-owned working memory: `selection` is
/// cleared and filled in selection order.
pub fn greedy_mwis_with(
    graph: &OverlapGraph,
    scratch: &mut PartitionScratch,
    selection: &mut Vec<usize>,
) {
    selection.clear();
    let wpr = graph.words_per_row();
    scratch.covered.clear();
    scratch.covered.resize(wpr, 0);
    loop {
        // Scan Lv for the maximum-weight remaining node (strict > keeps
        // the smallest index on ties, matching the reference).
        let mut best: Option<usize> = None;
        for wi in 0..wpr {
            let mut bits = !scratch.covered[wi] & graph.full_row_word(wi);
            while bits != 0 {
                let v = wi * BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if best.is_none_or(|b| graph.weight(v) > graph.weight(b)) {
                    best = Some(v);
                }
            }
        }
        let Some(v) = best else { break };
        selection.push(v);
        mask_set(&mut scratch.covered, v);
        mask_or(&mut scratch.covered, graph.neighbor_mask(v));
    }
    debug_assert!(graph.is_independent(selection));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection_weight;

    #[test]
    fn greedy_on_a_weighted_path() {
        // In the spirit of Example 5 / Figure 7: a 7-node path with
        // weight order w4 ≥ w6 ≥ w5 ≥ w1 ≥ w7 ≥ w2 ≥ w3. Greedy picks
        // w4 (removing w3, w5), then w6 (removing w7), then w1
        // (removing w2).
        let weights = vec![4.0, 2.0, 1.0, 10.0, 6.0, 7.0, 3.0]; // w1..w7
        let edges: Vec<(usize, usize)> = (0..6).map(|i| (i, i + 1)).collect();
        let g = OverlapGraph::from_parts(weights, edges);
        let sel = greedy_mwis(&g);
        assert_eq!(sel, vec![3, 5, 0]);
        assert!(g.is_independent(&sel));
        assert_eq!(selection_weight(&g, &sel), 21.0);
    }

    #[test]
    fn greedy_is_maximal() {
        // No remaining node can be added to the result.
        let g = OverlapGraph::from_parts(vec![5.0, 1.0, 1.0, 1.0], vec![(0, 1), (0, 2), (0, 3)]);
        let sel = greedy_mwis(&g);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn greedy_can_be_suboptimal_by_at_most_c() {
        // Star: hub weight 2, three leaves weight 1.5 each. Greedy takes
        // the hub (2.0); optimal takes the leaves (4.5).
        let g = OverlapGraph::from_parts(vec![2.0, 1.5, 1.5, 1.5], vec![(0, 1), (0, 2), (0, 3)]);
        let sel = greedy_mwis(&g);
        assert_eq!(sel, vec![0]);
        // c = 3 here; ratio 2/4.5 ≈ 0.44 ≥ 1/3, within Theorem 2's bound.
        let (ratio, bound) = (2.0 / 4.5, 1.0 / 3.0);
        assert!(ratio >= bound);
    }

    #[test]
    fn empty_graph() {
        let g = OverlapGraph::from_parts(vec![], vec![]);
        assert!(greedy_mwis(&g).is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let g = OverlapGraph::from_parts(vec![1.0, 1.0, 1.0], vec![(0, 1)]);
        // Ties resolve to the smallest index: 0, then 2.
        assert_eq!(greedy_mwis(&g), vec![0, 2]);
    }

    #[test]
    fn isolated_nodes_all_selected() {
        let g = OverlapGraph::from_parts(vec![1.0, 2.0, 3.0], vec![]);
        let mut sel = greedy_mwis(&g);
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2]);
    }

    #[test]
    fn scratch_reuse_across_calls() {
        let mut scratch = PartitionScratch::new();
        let mut sel = Vec::new();
        let big = OverlapGraph::from_parts(vec![1.0; 200], (0..199).map(|i| (i, i + 1)).collect());
        greedy_mwis_with(&big, &mut scratch, &mut sel);
        assert_eq!(sel.len(), 100);
        let small = OverlapGraph::from_parts(vec![3.0, 1.0], vec![(0, 1)]);
        greedy_mwis_with(&small, &mut scratch, &mut sel);
        assert_eq!(sel, vec![0]);
    }
}
