//! Partition selection for PIS (Section 5).
//!
//! Choosing the optimal set of non-overlapping query fragments is the
//! *index-based partition* problem, which the paper proves NP-hard by
//! equivalence with Maximum Weighted Independent Set (Theorem 1). This
//! crate provides:
//!
//! * [`overlap::OverlapGraph`] — the overlapping-relation graph `Q̃`
//!   (Figure 6): one node per indexed query fragment, weighted by
//!   selectivity, with word-parallel neighbor-mask adjacency built from
//!   vertex→fragment incidence (edges are generated only among
//!   fragments that actually share a query vertex);
//! * [`greedy::greedy_mwis`] — Algorithm 1, `O(c·n)` with optimality
//!   ratio `1/c` (Theorem 2);
//! * [`enhanced::enhanced_greedy_mwis`] — EnhancedGreedy(k), `O(cᵏnᵏ)`
//!   with guaranteed ratio `k/c` (Theorem 3 prints `c/k`; a ratio
//!   `w(S)/w(S_opt)` is at most 1 and reduces to Theorem 2's `1/c` at
//!   `k = 1`, so `k/c` is the intended bound);
//! * [`exact::exact_mwis`] — exact branch-and-bound for ablations and
//!   tests (≤ 128 nodes);
//! * [`scratch::PartitionScratch`] — caller-owned working memory: the
//!   `*_with` solver variants and
//!   [`OverlapGraph::rebuild_from_sets`](overlap::OverlapGraph::rebuild_from_sets)
//!   draw every buffer from it, so a reused scratch makes the whole
//!   partition stage allocation-free in steady state;
//! * [`mod@reference`] — the original pointer-adjacency graph and solvers,
//!   retained as the executable specification: proptests hold every
//!   mask-native path to byte-identical adjacency and selections
//!   against it.

#![forbid(unsafe_code)]

pub mod enhanced;
pub mod exact;
pub mod greedy;
pub mod overlap;
pub mod reference;
pub mod scratch;

pub use enhanced::{enhanced_greedy_mwis, enhanced_greedy_mwis_with};
pub use exact::{exact_mwis, exact_mwis_budgeted_with, exact_mwis_with, EXACT_MWIS_MAX_NODES};
pub use greedy::{greedy_mwis, greedy_mwis_with};
pub use overlap::OverlapGraph;
pub use scratch::PartitionScratch;

/// Total weight of a vertex selection.
pub fn selection_weight(graph: &OverlapGraph, selection: &[usize]) -> f64 {
    selection.iter().map(|&v| graph.weight(v)).sum()
}

/// The optimality ratio `w(S) / w(S_opt)` used in Section 5 to compare
/// greedy solutions against the exact optimum. Returns 1.0 when both
/// are empty.
pub fn optimality_ratio(graph: &OverlapGraph, approx: &[usize], optimal: &[usize]) -> f64 {
    let wa = selection_weight(graph, approx);
    let wo = selection_weight(graph, optimal);
    if wo == 0.0 {
        1.0
    } else {
        wa / wo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_of_empty_graphs_is_one() {
        let g = OverlapGraph::from_parts(vec![], vec![]);
        assert_eq!(optimality_ratio(&g, &[], &[]), 1.0);
    }

    #[test]
    fn selection_weight_sums() {
        let g = OverlapGraph::from_parts(vec![1.0, 2.0, 4.0], vec![]);
        assert_eq!(selection_weight(&g, &[0, 2]), 5.0);
    }
}
