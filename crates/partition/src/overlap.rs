//! The overlapping-relation graph `Q̃` (Section 5, Figure 6).
//!
//! Each indexed fragment of the query becomes a node weighted by its
//! selectivity; two nodes are adjacent iff their fragments share a query
//! vertex. A graph partition (Definition 3) is exactly an independent
//! set of `Q̃`, so the optimal partition is a maximum weighted
//! independent set.
//!
//! Adjacency is stored as word-parallel neighbor masks — one multi-word
//! bit row per node — so every independence or degree question the MWIS
//! solvers ask is an `AND`/popcount over `n/64` words, for any node
//! count (vertex ids and fragment counts beyond 128 no longer force a
//! sorted-merge fallback). Construction goes through vertex→fragment
//! incidence groups: edges are generated only among fragments that
//! actually share a query vertex, replacing the dense `O(f²)` pair loop,
//! and all working memory comes from a caller-owned
//! [`PartitionScratch`] so steady-state rebuilds allocate nothing.

use pis_graph::VertexId;

use crate::scratch::{mask_clear, mask_or, mask_set, tail_mask, PartitionScratch, BITS};

/// A small weighted graph over query fragments with mask adjacency.
#[derive(Clone, Debug, Default)]
pub struct OverlapGraph {
    weights: Vec<f64>,
    /// Row-major neighbor masks: node `v`'s row is
    /// `words[v*words_per_row..(v+1)*words_per_row]`.
    words: Vec<u64>,
    words_per_row: usize,
}

impl OverlapGraph {
    /// Builds `Q̃` from `(weight, query-vertex set)` pairs; the vertex
    /// sets need not be sorted.
    pub fn new(fragments: &[(f64, Vec<VertexId>)]) -> Self {
        OverlapGraph::from_sets(fragments.iter().map(|(w, vs)| (*w, vs.as_slice())))
    }

    /// Borrowed-slice form of [`OverlapGraph::new`] — arena-backed
    /// fragment stores hand in their vertex slices without cloning per
    /// fragment. Allocates a fresh scratch; callers in a loop should
    /// hold a [`PartitionScratch`] and use
    /// [`OverlapGraph::rebuild_from_sets`].
    pub fn from_sets<'a>(fragments: impl IntoIterator<Item = (f64, &'a [VertexId])>) -> Self {
        let mut graph = OverlapGraph::default();
        graph.rebuild_from_sets(&mut PartitionScratch::new(), fragments);
        graph
    }

    /// Rebuilds this graph in place from `(weight, vertex set)` pairs,
    /// reusing both the graph's own storage and the scratch buffers.
    ///
    /// Edges are generated from vertex→fragment incidence: the
    /// `(vertex, fragment)` pairs are sorted so each query vertex's
    /// covering fragments form one group, every group ORs its membership
    /// mask into each member's neighbor row, and the self-bits come out
    /// at the end. Fragments sharing no vertex are never paired, and
    /// duplicate vertices inside a set are idempotent.
    pub fn rebuild_from_sets<'a>(
        &mut self,
        scratch: &mut PartitionScratch,
        fragments: impl IntoIterator<Item = (f64, &'a [VertexId])>,
    ) {
        self.weights.clear();
        scratch.pairs.clear();
        for (i, (w, vs)) in fragments.into_iter().enumerate() {
            self.weights.push(w);
            for v in vs {
                scratch.pairs.push((v.0, i as u32));
            }
        }
        let n = self.weights.len();
        self.words_per_row = n.div_ceil(BITS);
        self.words.clear();
        self.words.resize(n * self.words_per_row, 0);
        let wpr = self.words_per_row;

        scratch.pairs.sort_unstable();
        scratch.pairs.dedup();
        scratch.group.clear();
        scratch.group.resize(wpr, 0);
        let mut start = 0;
        while start < scratch.pairs.len() {
            let vertex = scratch.pairs[start].0;
            let mut end = start + 1;
            while end < scratch.pairs.len() && scratch.pairs[end].0 == vertex {
                end += 1;
            }
            // A lone covering fragment produces no edges.
            if end - start >= 2 {
                scratch.group.iter_mut().for_each(|w| *w = 0);
                for &(_, f) in &scratch.pairs[start..end] {
                    mask_set(&mut scratch.group, f as usize);
                }
                for &(_, f) in &scratch.pairs[start..end] {
                    let f = f as usize;
                    mask_or(&mut self.words[f * wpr..(f + 1) * wpr], &scratch.group);
                }
            }
            start = end;
        }
        for v in 0..n {
            mask_clear(&mut self.words[v * wpr..(v + 1) * wpr], v);
        }
    }

    /// Builds `Q̃` from explicit weights and edges (test/ablation use).
    pub fn from_parts(weights: Vec<f64>, edges: Vec<(usize, usize)>) -> Self {
        let n = weights.len();
        let wpr = n.div_ceil(BITS);
        let mut words = vec![0u64; n * wpr];
        for (u, v) in edges {
            assert!(u != v && u < n && v < n, "invalid overlap edge");
            mask_set(&mut words[u * wpr..(u + 1) * wpr], v);
            mask_set(&mut words[v * wpr..(v + 1) * wpr], u);
        }
        OverlapGraph { weights, words, words_per_row: wpr }
    }

    /// Number of nodes (query fragments).
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight (selectivity) of node `v`.
    #[inline]
    pub fn weight(&self, v: usize) -> f64 {
        self.weights[v]
    }

    /// Words per neighbor-mask row (`len / 64`, rounded up).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The neighbor mask of node `v`: one bit per adjacent node.
    #[inline]
    pub fn neighbor_mask(&self, v: usize) -> &[u64] {
        &self.words[v * self.words_per_row..(v + 1) * self.words_per_row]
    }

    /// Iterates the neighbors of node `v` in ascending order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.neighbor_mask(v).iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * BITS + b)
            })
        })
    }

    /// Degree of node `v` (neighbor-mask popcount).
    pub fn degree(&self, v: usize) -> usize {
        self.neighbor_mask(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether nodes `u` and `v` are adjacent.
    #[inline]
    pub fn is_adjacent(&self, u: usize, v: usize) -> bool {
        (self.neighbor_mask(u)[v / BITS] >> (v % BITS)) & 1 == 1
    }

    /// The all-nodes row mask (phantom tail bits zero), word `wi`.
    #[inline]
    pub(crate) fn full_row_word(&self, wi: usize) -> u64 {
        tail_mask(wi, self.len())
    }

    /// Whether `selection` is an independent set (no two selected nodes
    /// adjacent, no duplicates).
    pub fn is_independent(&self, selection: &[usize]) -> bool {
        let mut chosen = vec![0u64; self.words_per_row];
        for &v in selection {
            if v >= self.len() || crate::scratch::mask_contains(&chosen, v) {
                return false;
            }
            mask_set(&mut chosen, v);
        }
        selection.iter().all(|&v| !crate::scratch::masks_intersect(self.neighbor_mask(v), &chosen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    fn adj(g: &OverlapGraph, v: usize) -> Vec<usize> {
        g.neighbors(v).collect()
    }

    #[test]
    fn overlap_edges_from_shared_vertices() {
        let g = OverlapGraph::new(&[(1.0, v(&[0, 1, 2])), (2.0, v(&[2, 3])), (3.0, v(&[4, 5]))]);
        assert_eq!(g.len(), 3);
        assert_eq!(adj(&g, 0), vec![1]);
        assert_eq!(adj(&g, 1), vec![0]);
        assert!(adj(&g, 2).is_empty());
        assert!(g.is_independent(&[0, 2]));
        assert!(!g.is_independent(&[0, 1]));
    }

    #[test]
    fn unsorted_and_duplicated_vertex_sets_handled() {
        let g = OverlapGraph::new(&[(1.0, v(&[3, 1, 3])), (1.0, v(&[2, 1]))]);
        assert_eq!(adj(&g, 0), vec![1]);
        assert!(g.is_adjacent(1, 0));
    }

    #[test]
    fn large_vertex_ids_take_no_fallback() {
        // Ids far beyond 128 — the old u128 fast path's cutoff — build
        // through the same incidence grouping as small ids.
        let g = OverlapGraph::new(&[
            (1.0, v(&[4_000_000_000, 7])),
            (1.0, v(&[4_000_000_000])),
            (1.0, v(&[7, 130])),
            (1.0, v(&[129])),
        ]);
        assert_eq!(adj(&g, 0), vec![1, 2]);
        assert_eq!(adj(&g, 1), vec![0]);
        assert_eq!(adj(&g, 2), vec![0]);
        assert!(adj(&g, 3).is_empty());
    }

    #[test]
    fn empty_sets_are_isolated() {
        let g = OverlapGraph::new(&[(1.0, v(&[])), (2.0, v(&[1])), (3.0, v(&[1]))]);
        assert!(adj(&g, 0).is_empty());
        assert_eq!(adj(&g, 1), vec![2]);
        assert!(g.is_independent(&[0, 1]));
    }

    #[test]
    fn multi_word_rows_past_128_nodes() {
        // 140 fragments all sharing vertex 0: a clique needing 3-word
        // rows. Every pair is adjacent; degrees are n-1.
        let frags: Vec<(f64, Vec<VertexId>)> = (0..140).map(|_| (1.0, v(&[0]))).collect();
        let g = OverlapGraph::new(&frags);
        assert_eq!(g.words_per_row(), 3);
        assert_eq!(g.degree(0), 139);
        assert_eq!(g.degree(139), 139);
        assert!(g.is_adjacent(5, 133));
        assert!(!g.is_independent(&[5, 133]));
    }

    #[test]
    fn rebuild_reuses_buffers_across_shapes() {
        let mut g = OverlapGraph::default();
        let mut scratch = PartitionScratch::new();
        let a = [(1.0, v(&[0, 1])), (2.0, v(&[1, 2]))];
        g.rebuild_from_sets(&mut scratch, a.iter().map(|(w, vs)| (*w, vs.as_slice())));
        assert_eq!(g.len(), 2);
        assert!(g.is_adjacent(0, 1));
        let b = [(1.0, v(&[0])), (2.0, v(&[1])), (3.0, v(&[2]))];
        g.rebuild_from_sets(&mut scratch, b.iter().map(|(w, vs)| (*w, vs.as_slice())));
        assert_eq!(g.len(), 3);
        assert_eq!(g.degree(0) + g.degree(1) + g.degree(2), 0);
    }

    #[test]
    fn from_parts_dedups_edges() {
        let g = OverlapGraph::from_parts(vec![1.0, 1.0], vec![(0, 1), (1, 0)]);
        assert_eq!(adj(&g, 0), vec![1]);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    #[should_panic(expected = "invalid overlap edge")]
    fn from_parts_rejects_self_loops() {
        let _ = OverlapGraph::from_parts(vec![1.0], vec![(0, 0)]);
    }

    #[test]
    fn independence_rejects_duplicates_and_out_of_range() {
        let g = OverlapGraph::from_parts(vec![1.0, 1.0], vec![]);
        assert!(!g.is_independent(&[0, 0]));
        assert!(!g.is_independent(&[5]));
        assert!(g.is_independent(&[]));
        assert!(g.is_independent(&[0, 1]));
    }
}
