//! The overlapping-relation graph `Q̃` (Section 5, Figure 6).
//!
//! Each indexed fragment of the query becomes a node weighted by its
//! selectivity; two nodes are adjacent iff their fragments share a query
//! vertex. A graph partition (Definition 3) is exactly an independent
//! set of `Q̃`, so the optimal partition is a maximum weighted
//! independent set.

use pis_graph::VertexId;

/// A small weighted graph over query fragments.
#[derive(Clone, Debug, Default)]
pub struct OverlapGraph {
    weights: Vec<f64>,
    adj: Vec<Vec<u32>>,
}

impl OverlapGraph {
    /// Builds `Q̃` from `(weight, query-vertex set)` pairs; the vertex
    /// sets need not be sorted.
    pub fn new(fragments: &[(f64, Vec<VertexId>)]) -> Self {
        OverlapGraph::from_sets(fragments.iter().map(|(w, vs)| (*w, vs.as_slice())))
    }

    /// Borrowed-slice form of [`OverlapGraph::new`] — arena-backed
    /// fragment stores hand in their vertex slices without cloning per
    /// fragment.
    ///
    /// Query graphs are small, so when every vertex id fits a 128-bit
    /// mask (the overwhelmingly common case) each of the `O(n²)` pair
    /// tests is a single `AND` instead of a sorted-list merge; larger
    /// vertex spaces fall back to the merge path.
    pub fn from_sets<'a>(fragments: impl IntoIterator<Item = (f64, &'a [VertexId])>) -> Self {
        let mut weights: Vec<f64> = Vec::new();
        let sets: Vec<&[VertexId]> = fragments
            .into_iter()
            .map(|(w, vs)| {
                weights.push(w);
                vs
            })
            .collect();
        let n = weights.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let max_v = sets.iter().flat_map(|vs| vs.iter()).map(|v| v.0).max();
        if max_v.is_none_or(|m| m < 128) {
            let masks: Vec<u128> =
                sets.iter().map(|vs| vs.iter().fold(0u128, |m, v| m | (1 << v.0))).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if masks[i] & masks[j] != 0 {
                        adj[i].push(j as u32);
                        adj[j].push(i as u32);
                    }
                }
            }
        } else {
            let sorted_sets: Vec<Vec<VertexId>> = sets
                .iter()
                .map(|vs| {
                    let mut s = vs.to_vec();
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if sorted_intersects(&sorted_sets[i], &sorted_sets[j]) {
                        adj[i].push(j as u32);
                        adj[j].push(i as u32);
                    }
                }
            }
        }
        OverlapGraph { weights, adj }
    }

    /// Builds `Q̃` from explicit weights and edges (test/ablation use).
    pub fn from_parts(weights: Vec<f64>, edges: Vec<(usize, usize)>) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); weights.len()];
        for (u, v) in edges {
            assert!(u != v && u < weights.len() && v < weights.len(), "invalid overlap edge");
            adj[u].push(v as u32);
            adj[v].push(u as u32);
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        OverlapGraph { weights, adj }
    }

    /// Number of nodes (query fragments).
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight (selectivity) of node `v`.
    #[inline]
    pub fn weight(&self, v: usize) -> f64 {
        self.weights[v]
    }

    /// Neighbors of node `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Whether `selection` is an independent set (no two selected nodes
    /// adjacent, no duplicates).
    pub fn is_independent(&self, selection: &[usize]) -> bool {
        let mut chosen = vec![false; self.len()];
        for &v in selection {
            if v >= self.len() || chosen[v] {
                return false;
            }
            chosen[v] = true;
        }
        for &v in selection {
            if self.adj[v].iter().any(|&n| chosen[n as usize]) {
                return false;
            }
        }
        true
    }
}

/// Do two sorted, deduplicated vertex lists share an element?
fn sorted_intersects(a: &[VertexId], b: &[VertexId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn overlap_edges_from_shared_vertices() {
        let g = OverlapGraph::new(&[(1.0, v(&[0, 1, 2])), (2.0, v(&[2, 3])), (3.0, v(&[4, 5]))]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert!(g.neighbors(2).is_empty());
        assert!(g.is_independent(&[0, 2]));
        assert!(!g.is_independent(&[0, 1]));
    }

    #[test]
    fn unsorted_and_duplicated_vertex_sets_handled() {
        let g = OverlapGraph::new(&[(1.0, v(&[3, 1, 3])), (1.0, v(&[2, 1]))]);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn from_parts_dedups_edges() {
        let g = OverlapGraph::from_parts(vec![1.0, 1.0], vec![(0, 1), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    #[should_panic(expected = "invalid overlap edge")]
    fn from_parts_rejects_self_loops() {
        let _ = OverlapGraph::from_parts(vec![1.0], vec![(0, 0)]);
    }

    #[test]
    fn independence_rejects_duplicates_and_out_of_range() {
        let g = OverlapGraph::from_parts(vec![1.0, 1.0], vec![]);
        assert!(!g.is_independent(&[0, 0]));
        assert!(!g.is_independent(&[5]));
        assert!(g.is_independent(&[]));
        assert!(g.is_independent(&[0, 1]));
    }
}
