//! Pointer-adjacency reference implementations of `Q̃` and the MWIS
//! solvers — the executable specification of the mask-native crate.
//!
//! [`AdjOverlapGraph`] keeps the original `Vec<Vec<u32>>` adjacency and
//! builds every pair through a sorted-list merge; the `*_mwis_ref`
//! solvers are the original boolean-array algorithms, untouched. The
//! crate's proptests (and `PisSearcher::search_reference` one layer up)
//! hold the mask-native [`crate::OverlapGraph`] and solvers to
//! byte-identical adjacency and selections against this module.

use pis_graph::VertexId;

/// The reference overlapping-relation graph: sorted adjacency lists.
#[derive(Clone, Debug, Default)]
pub struct AdjOverlapGraph {
    weights: Vec<f64>,
    adj: Vec<Vec<u32>>,
}

impl AdjOverlapGraph {
    /// Builds `Q̃` from `(weight, query-vertex set)` pairs via the
    /// all-pairs sorted-merge test.
    pub fn new(fragments: &[(f64, Vec<VertexId>)]) -> Self {
        AdjOverlapGraph::from_sets(fragments.iter().map(|(w, vs)| (*w, vs.as_slice())))
    }

    /// Borrowed-slice form of [`AdjOverlapGraph::new`].
    pub fn from_sets<'a>(fragments: impl IntoIterator<Item = (f64, &'a [VertexId])>) -> Self {
        let mut weights: Vec<f64> = Vec::new();
        let sorted_sets: Vec<Vec<VertexId>> = fragments
            .into_iter()
            .map(|(w, vs)| {
                weights.push(w);
                let mut s = vs.to_vec();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let n = weights.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if sorted_intersects(&sorted_sets[i], &sorted_sets[j]) {
                    adj[i].push(j as u32);
                    adj[j].push(i as u32);
                }
            }
        }
        AdjOverlapGraph { weights, adj }
    }

    /// Builds `Q̃` from explicit weights and edges.
    pub fn from_parts(weights: Vec<f64>, edges: Vec<(usize, usize)>) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); weights.len()];
        for (u, v) in edges {
            assert!(u != v && u < weights.len() && v < weights.len(), "invalid overlap edge");
            adj[u].push(v as u32);
            adj[v].push(u as u32);
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        AdjOverlapGraph { weights, adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight of node `v`.
    #[inline]
    pub fn weight(&self, v: usize) -> f64 {
        self.weights[v]
    }

    /// Sorted neighbor list of node `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Whether `selection` is an independent set.
    pub fn is_independent(&self, selection: &[usize]) -> bool {
        let mut chosen = vec![false; self.len()];
        for &v in selection {
            if v >= self.len() || chosen[v] {
                return false;
            }
            chosen[v] = true;
        }
        selection.iter().all(|&v| !self.adj[v].iter().any(|&n| chosen[n as usize]))
    }

    /// Total weight of a selection.
    pub fn selection_weight(&self, selection: &[usize]) -> f64 {
        selection.iter().map(|&v| self.weight(v)).sum()
    }
}

/// Do two sorted, deduplicated vertex lists share an element?
fn sorted_intersects(a: &[VertexId], b: &[VertexId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Reference Algorithm 1: max-weight node per round, boolean alive
/// array.
pub fn greedy_mwis_ref(graph: &AdjOverlapGraph) -> Vec<usize> {
    let n = graph.len();
    let mut alive = vec![true; n];
    let mut selection = Vec::new();
    loop {
        let mut best: Option<usize> = None;
        for (v, &is_alive) in alive.iter().enumerate() {
            if is_alive && best.is_none_or(|b| graph.weight(v) > graph.weight(b)) {
                best = Some(v);
            }
        }
        let Some(v) = best else { break };
        selection.push(v);
        alive[v] = false;
        for &w in graph.neighbors(v) {
            alive[w as usize] = false;
        }
    }
    debug_assert!(graph.is_independent(&selection));
    selection
}

/// Reference EnhancedGreedy(k): best independent ≤k-subset per round,
/// linear `contains` independence tests.
///
/// # Panics
/// Panics if `k == 0`.
pub fn enhanced_greedy_mwis_ref(graph: &AdjOverlapGraph, k: usize) -> Vec<usize> {
    assert!(k >= 1, "EnhancedGreedy requires k >= 1");
    let n = graph.len();
    let mut alive = vec![true; n];
    let mut selection = Vec::new();
    loop {
        let remaining: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
        if remaining.is_empty() {
            break;
        }
        let mut best: Vec<usize> = Vec::new();
        let mut best_weight = f64::NEG_INFINITY;
        let mut current: Vec<usize> = Vec::new();
        enumerate_k_sets_ref(graph, &remaining, 0, k, &mut current, &mut |set| {
            let w: f64 = set.iter().map(|&v| graph.weight(v)).sum();
            if w > best_weight {
                best_weight = w;
                best = set.to_vec();
            }
        });
        if best.is_empty() {
            break;
        }
        for &v in &best {
            selection.push(v);
            alive[v] = false;
            for &w in graph.neighbors(v) {
                alive[w as usize] = false;
            }
        }
    }
    debug_assert!(graph.is_independent(&selection));
    selection
}

/// Enumerates all non-empty independent subsets of `remaining` with at
/// most `k` elements (lexicographic order over `remaining`).
fn enumerate_k_sets_ref(
    graph: &AdjOverlapGraph,
    remaining: &[usize],
    start: usize,
    k: usize,
    current: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    for i in start..remaining.len() {
        let v = remaining[i];
        if current.iter().any(|&u| graph.neighbors(u).contains(&(v as u32))) {
            continue;
        }
        current.push(v);
        f(current);
        if current.len() < k {
            enumerate_k_sets_ref(graph, remaining, i + 1, k, current, f);
        }
        current.pop();
    }
}

/// Reference exact MWIS: branch-and-bound on boolean alive arrays.
///
/// # Panics
/// Panics if the graph has more than
/// [`crate::exact::EXACT_MWIS_MAX_NODES`] nodes.
pub fn exact_mwis_ref(graph: &AdjOverlapGraph) -> Vec<usize> {
    assert!(
        graph.len() <= crate::exact::EXACT_MWIS_MAX_NODES,
        "exact MWIS capped at {} nodes ({} given)",
        crate::exact::EXACT_MWIS_MAX_NODES,
        graph.len()
    );
    let mut best: Vec<usize> = Vec::new();
    let mut best_weight = f64::NEG_INFINITY;
    let mut current: Vec<usize> = Vec::new();
    let alive: Vec<bool> = vec![true; graph.len()];
    branch_ref(graph, alive, 0.0, &mut current, &mut best, &mut best_weight);
    best.sort_unstable();
    best
}

fn branch_ref(
    graph: &AdjOverlapGraph,
    alive: Vec<bool>,
    current_weight: f64,
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
    best_weight: &mut f64,
) {
    // Bound: even taking every remaining node cannot beat the incumbent.
    let remaining_weight: f64 =
        (0..graph.len()).filter(|&v| alive[v]).map(|v| graph.weight(v)).sum();
    if current_weight + remaining_weight <= *best_weight {
        return;
    }
    // Pick the highest-degree remaining node to branch on.
    let pivot = (0..graph.len())
        .filter(|&v| alive[v])
        .max_by_key(|&v| graph.neighbors(v).iter().filter(|&&w| alive[w as usize]).count());
    let Some(v) = pivot else {
        if current_weight > *best_weight {
            *best_weight = current_weight;
            *best = current.clone();
        }
        return;
    };

    // Include v.
    let mut with_v = alive.clone();
    with_v[v] = false;
    for &w in graph.neighbors(v) {
        with_v[w as usize] = false;
    }
    current.push(v);
    branch_ref(graph, with_v, current_weight + graph.weight(v), current, best, best_weight);
    current.pop();

    // Exclude v.
    let mut without_v = alive;
    without_v[v] = false;
    branch_ref(graph, without_v, current_weight, current, best, best_weight);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn merge_construction_matches_hand_graph() {
        let g = AdjOverlapGraph::new(&[(1.0, v(&[0, 1, 2])), (2.0, v(&[2, 3])), (3.0, v(&[4]))]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn reference_solvers_agree_on_a_star() {
        let g = AdjOverlapGraph::from_parts(vec![2.0, 1.5, 1.5, 1.5], vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(greedy_mwis_ref(&g), vec![0]);
        assert_eq!(enhanced_greedy_mwis_ref(&g, 2), vec![1, 2, 3]);
        assert_eq!(exact_mwis_ref(&g), vec![1, 2, 3]);
    }
}
