//! Reusable buffers for mask-native `Q̃` construction and the MWIS
//! solvers.
//!
//! One [`PartitionScratch`] serves any number of sequential partition
//! selections: `OverlapGraph::rebuild_from_sets` and every `*_mwis_with`
//! solver draw their working memory from it, so in steady state the
//! whole partition stage performs no heap allocation. Scratches are
//! independent — one per thread for concurrent searches.

/// Word width of the neighbor-mask rows.
pub(crate) const BITS: usize = u64::BITS as usize;

/// Reusable working memory for [`crate::OverlapGraph`] construction and
/// the mask-native MWIS solvers.
#[derive(Clone, Debug, Default)]
pub struct PartitionScratch {
    /// `(vertex id, fragment)` incidence pairs, sorted to group the
    /// fragments covering each query vertex.
    pub(crate) pairs: Vec<(u32, u32)>,
    /// One-row mask of the fragments in the current vertex group.
    pub(crate) group: Vec<u64>,
    /// Covered-vertex mask: nodes removed from play (greedy/enhanced).
    pub(crate) covered: Vec<u64>,
    /// Members of the candidate set under construction (enhanced).
    pub(crate) members: Vec<u64>,
    /// Remaining (alive) node list rebuilt each enhanced round.
    pub(crate) remaining: Vec<usize>,
    /// Best candidate set of the current enhanced round.
    pub(crate) round_best: Vec<usize>,
    /// Depth-indexed arena of alive masks for the exact branch-and-bound
    /// (level `d` occupies `d*words_per_row..(d+1)*words_per_row`).
    pub(crate) stack: Vec<u64>,
    /// Current inclusion stack of the exact branch-and-bound.
    pub(crate) current: Vec<usize>,
    /// Incumbent selection of the exact branch-and-bound.
    pub(crate) incumbent: Vec<usize>,
}

impl PartitionScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        PartitionScratch::default()
    }
}

/// Whether bit `v` is set.
#[inline]
pub(crate) fn mask_contains(mask: &[u64], v: usize) -> bool {
    (mask[v / BITS] >> (v % BITS)) & 1 == 1
}

/// Sets bit `v`.
#[inline]
pub(crate) fn mask_set(mask: &mut [u64], v: usize) {
    mask[v / BITS] |= 1u64 << (v % BITS);
}

/// Clears bit `v`.
#[inline]
pub(crate) fn mask_clear(mask: &mut [u64], v: usize) {
    mask[v / BITS] &= !(1u64 << (v % BITS));
}

/// `dst |= src`, word-parallel.
#[inline]
pub(crate) fn mask_or(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Whether `a & b` has any set bit (one AND per word, early exit).
#[inline]
pub(crate) fn masks_intersect(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// Popcount of `a & b`.
#[inline]
pub(crate) fn mask_and_count(a: &[u64], b: &[u64]) -> usize {
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones() as usize).sum()
}

/// The valid-bit mask of word `wi` in an `n`-bit row (all ones except
/// the phantom tail of the last word).
#[inline]
pub(crate) fn tail_mask(wi: usize, n: usize) -> u64 {
    let bits_before = wi * BITS;
    if n >= bits_before + BITS {
        u64::MAX
    } else if n <= bits_before {
        0
    } else {
        (1u64 << (n - bits_before)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_ops_roundtrip() {
        let mut m = vec![0u64; 3];
        for v in [0, 63, 64, 130] {
            mask_set(&mut m, v);
            assert!(mask_contains(&m, v));
        }
        mask_clear(&mut m, 64);
        assert!(!mask_contains(&m, 64));
        for (v, expect) in [(0, true), (63, true), (64, false), (130, true), (131, false)] {
            assert_eq!(mask_contains(&m, v), expect, "bit {v}");
        }
    }

    #[test]
    fn intersection_helpers() {
        let mut a = vec![0u64; 2];
        let mut b = vec![0u64; 2];
        mask_set(&mut a, 3);
        mask_set(&mut a, 100);
        mask_set(&mut b, 100);
        assert!(masks_intersect(&a, &b));
        assert_eq!(mask_and_count(&a, &b), 1);
        mask_clear(&mut b, 100);
        assert!(!masks_intersect(&a, &b));
    }

    #[test]
    fn tail_masks_cover_exactly_n_bits() {
        assert_eq!(tail_mask(0, 64), u64::MAX);
        assert_eq!(tail_mask(0, 3), 0b111);
        assert_eq!(tail_mask(1, 64), 0);
        assert_eq!(tail_mask(1, 70), 0b111111);
        assert_eq!(tail_mask(2, 70), 0);
    }
}
