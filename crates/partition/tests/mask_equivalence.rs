//! Differential equivalence suite for the mask-native partition stage.
//!
//! The pointer-adjacency graph and solvers retained in
//! `pis_partition::reference` are the executable specification; these
//! properties hold the mask-native `OverlapGraph` (vertex→fragment
//! incidence construction, multi-word neighbor rows) and the three MWIS
//! solvers to **byte-identical** adjacency and selections across vertex
//! id ranges (below and far beyond the old 128-id u128 cutoff),
//! duplicate vertices, empty sets, >128-node instances, and zero-weight
//! nodes.

use pis_graph::VertexId;
use pis_partition::reference::{
    enhanced_greedy_mwis_ref, exact_mwis_ref, greedy_mwis_ref, AdjOverlapGraph,
};
use pis_partition::{
    enhanced_greedy_mwis, exact_mwis, greedy_mwis, OverlapGraph, EXACT_MWIS_MAX_NODES,
};
use proptest::prelude::*;

/// Mask adjacency decoded into sorted neighbor lists, one per node.
fn mask_adjacency(g: &OverlapGraph) -> Vec<Vec<usize>> {
    (0..g.len()).map(|v| g.neighbors(v).collect()).collect()
}

/// Reference adjacency as `usize` lists, one per node.
fn ref_adjacency(g: &AdjOverlapGraph) -> Vec<Vec<usize>> {
    (0..g.len()).map(|v| g.neighbors(v).iter().map(|&n| n as usize).collect()).collect()
}

/// Builds both graph representations from the same fragment sets.
fn both_from_sets(sets: &[Vec<u32>]) -> (OverlapGraph, AdjOverlapGraph) {
    let frags: Vec<(f64, Vec<VertexId>)> =
        sets.iter().map(|vs| (1.0, vs.iter().map(|&v| VertexId(v)).collect())).collect();
    (OverlapGraph::new(&frags), AdjOverlapGraph::new(&frags))
}

/// Builds both graph representations from the same weights and edges.
fn both_from_parts(
    weights: &[f64],
    raw_edges: &[(usize, usize)],
) -> (OverlapGraph, AdjOverlapGraph) {
    let n = weights.len();
    let edges: Vec<(usize, usize)> = if n < 2 {
        Vec::new()
    } else {
        raw_edges
            .iter()
            .filter_map(|&(a, b)| {
                let (u, v) = (a % n, b % n);
                (u != v).then_some((u.min(v), u.max(v)))
            })
            .collect()
    };
    (
        OverlapGraph::from_parts(weights.to_vec(), edges.clone()),
        AdjOverlapGraph::from_parts(weights.to_vec(), edges),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Incidence-built mask adjacency equals the all-pairs sorted-merge
    /// reference across mixed vertex-id ranges (small dense ids force
    /// duplicates and heavy sharing; ids near `u32::MAX` would overflow
    /// any fixed-width mask of vertex ids), duplicate vertices inside a
    /// set, and empty sets.
    #[test]
    fn mask_adjacency_matches_sorted_merge(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..40, 0..6),
            0..50,
        ),
        wide_sets in proptest::collection::vec(
            proptest::collection::vec(0u32..4_000_000_000, 0..4),
            0..10,
        ),
    ) {
        let mut all = sets;
        all.extend(wide_sets);
        let (mask, reference) = both_from_sets(&all);
        prop_assert_eq!(mask.len(), reference.len());
        prop_assert_eq!(mask_adjacency(&mask), ref_adjacency(&reference));
    }

    /// Greedy and EnhancedGreedy(k) return byte-identical selections to
    /// the pointer reference, including >128-node (multi-word) instances
    /// and zero-weight nodes.
    #[test]
    fn greedy_solvers_match_pointer_reference(
        weights in proptest::collection::vec(
            prop::sample::select(vec![0.0, 0.25, 0.5, 1.0, 1.5, 4.0]),
            0..150,
        ),
        raw_edges in proptest::collection::vec((0usize..1 << 16, 0usize..1 << 16), 0..500),
    ) {
        let (mask, reference) = both_from_parts(&weights, &raw_edges);
        prop_assert_eq!(greedy_mwis(&mask), greedy_mwis_ref(&reference));
        for k in [1, 2] {
            prop_assert_eq!(
                enhanced_greedy_mwis(&mask, k),
                enhanced_greedy_mwis_ref(&reference, k),
                "k={}", k
            );
        }
    }

    /// Exact branch-and-bound matches the pointer reference on small
    /// random instances of any shape (the weak remaining-weight bound
    /// makes large sparse instances intractable for both).
    #[test]
    fn exact_solver_matches_pointer_reference(
        weights in proptest::collection::vec(
            prop::sample::select(vec![0.0, 0.5, 1.0, 2.5, 7.0]),
            0..18,
        ),
        raw_edges in proptest::collection::vec((0usize..1 << 16, 0usize..1 << 16), 0..80),
    ) {
        let (mask, reference) = both_from_parts(&weights, &raw_edges);
        let opt = exact_mwis(&mask);
        prop_assert_eq!(&opt, &exact_mwis_ref(&reference));
        prop_assert!(mask.is_independent(&opt));
    }

    /// Exact equivalence on multi-word (>64-node) instances: a clique
    /// plus isolated nodes keeps the branch-and-bound linear while the
    /// masks span two words.
    #[test]
    fn exact_solver_matches_reference_past_64_nodes(
        clique in 60usize..EXACT_MWIS_MAX_NODES - 8,
        isolated in 0usize..8,
        heavy in 0usize..60,
    ) {
        let n = clique + isolated;
        let mut weights = vec![1.0; n];
        weights[heavy % clique] = 3.0;
        let mut edges = Vec::new();
        for u in 0..clique {
            for v in (u + 1)..clique {
                edges.push((u, v));
            }
        }
        let mask = OverlapGraph::from_parts(weights.clone(), edges.clone());
        let reference = AdjOverlapGraph::from_parts(weights, edges);
        prop_assert_eq!(exact_mwis(&mask), exact_mwis_ref(&reference));
    }
}

/// Selections also agree when both graphs are built from the same
/// fragment vertex sets end to end (construction + solver).
#[test]
fn end_to_end_sets_to_selection_agreement() {
    // 140 interval fragments over a long path of query vertices: node i
    // covers {i, i+1, i+2}, so the overlap graph is a 140-node band
    // graph needing multi-word rows.
    let sets: Vec<Vec<u32>> = (0..140u32).map(|i| vec![i, i + 1, i + 2]).collect();
    let frags: Vec<(f64, Vec<VertexId>)> = sets
        .iter()
        .enumerate()
        .map(|(i, vs)| (0.5 + (i % 7) as f64 * 0.3, vs.iter().map(|&v| VertexId(v)).collect()))
        .collect();
    let mask = OverlapGraph::new(&frags);
    let reference = AdjOverlapGraph::new(&frags);
    assert_eq!(mask_adjacency(&mask), ref_adjacency(&reference));
    assert_eq!(greedy_mwis(&mask), greedy_mwis_ref(&reference));
    assert_eq!(enhanced_greedy_mwis(&mask, 2), enhanced_greedy_mwis_ref(&reference, 2));
}
