//! Substructure similarity search over a synthetic antiviral-screen-like
//! database — the paper's motivating workload at example scale.
//!
//! Generates 500 molecule-like graphs, samples real substructure queries
//! from them (the paper's `Qm` protocol) and compares PIS against the
//! topoPrune and naive baselines: answer agreement, candidate counts and
//! wall time.
//!
//! Run with: `cargo run --release --example chemical_similarity`

use std::time::Instant;

use pis::datasets::sample_query_set;
use pis::prelude::*;

fn main() {
    // 1. Synthesize the database (deterministic in the seed).
    let generator = MoleculeGenerator::new(MoleculeConfig::default());
    let db = generator.database(500, 42);
    let stats = DatasetStats::compute(&db);
    println!("database: {stats}");

    // 2. Build the PIS system: gIndex features up to 6 edges.
    let t = Instant::now();
    let system = PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .gindex_features(GindexConfig { max_edges: 6, ..GindexConfig::default() })
        .build(db.clone());
    println!(
        "index: {} structure classes, {} fragment entries, built in {:?}",
        system.index().features().len(),
        system.index().total_entries(),
        t.elapsed()
    );

    // 3. Sample a Q16 query set and search with sigma = 2.
    let queries = sample_query_set(&db, 16, 10, 7);
    let sigma = 2.0;
    let mut pis_candidates = 0usize;
    let mut topo_candidates = 0usize;
    let mut pis_time = std::time::Duration::ZERO;
    let mut naive_time = std::time::Duration::ZERO;
    for (i, q) in queries.iter().enumerate() {
        let t = Instant::now();
        let pis = system.search(q, sigma);
        pis_time += t.elapsed();

        let topo = system.topo_prune(q, sigma);

        let t = Instant::now();
        let naive = system.naive_scan(q, sigma);
        naive_time += t.elapsed();

        assert_eq!(pis.answers, topo.answers, "all strategies must agree");
        assert_eq!(pis.answers, naive.answers, "all strategies must agree");
        pis_candidates += pis.candidates.len();
        topo_candidates += topo.candidates.len();
        println!(
            "query {i:2}: answers {:3}   candidates PIS {:4} vs topoPrune {:4}",
            pis.answers.len(),
            pis.candidates.len(),
            topo.candidates.len()
        );
    }
    println!(
        "\ntotals: PIS candidates {pis_candidates} vs topoPrune {topo_candidates} \
         (reduction {:.1}x)",
        topo_candidates as f64 / pis_candidates.max(1) as f64
    );
    println!("wall time: PIS {pis_time:?} vs naive scan {naive_time:?}");
}
