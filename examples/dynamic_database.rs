//! A live graph database: incremental indexing and nearest-neighbor
//! queries.
//!
//! Compound registries grow continuously; rebuilding a fragment index
//! per arrival would be wasteful. This example builds a PIS system over
//! an initial corpus, streams new molecules in with
//! `PisSystem::insert_graph`, and answers both range (SSSD) and top-k
//! queries over the evolving database.
//!
//! Run with: `cargo run --release --example dynamic_database`

use pis::datasets::sample_query_set;
use pis::prelude::*;

fn main() {
    let generator = MoleculeGenerator::new(MoleculeConfig::default());
    let initial = generator.database(300, 17);
    let arrivals = generator.database(100, 18);

    let mut system = PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .gindex_features(GindexConfig { max_edges: 5, ..GindexConfig::default() })
        .build(initial.clone());
    println!(
        "initial: {} graphs, {} fragment entries",
        system.database().len(),
        system.index().total_entries()
    );

    // A fixed monitoring query, sampled from the initial corpus.
    let query = sample_query_set(&initial, 12, 1, 4).remove(0);
    let before = system.search(&query, 2.0);
    println!("before arrivals: {} answers within sigma=2", before.answers.len());

    // Stream in new compounds.
    for molecule in arrivals {
        system.insert_graph(molecule);
    }
    println!(
        "after arrivals: {} graphs, {} fragment entries",
        system.database().len(),
        system.index().total_entries()
    );

    let after = system.search(&query, 2.0);
    println!("after arrivals: {} answers within sigma=2", after.answers.len());
    assert!(after.answers.len() >= before.answers.len(), "inserting graphs can only add answers");
    // Old answers must survive (ids are stable).
    for a in &before.answers {
        assert!(after.answers.contains(a), "existing answer lost after insertions");
    }

    // Top-k: the five nearest neighbors of the query, with exact
    // distances.
    let knn = system.knn(&query, 5);
    println!("\n5 nearest neighbors (radius used: {}):", knn.radius);
    for n in &knn.neighbors {
        println!("  {}: distance {}", n.graph, n.distance);
    }
    assert!(!knn.neighbors.is_empty());
    assert!(knn.neighbors.windows(2).all(|w| w[0].distance <= w[1].distance));

    // Sanity: the incremental system answers exactly like a fresh bulk
    // build over the same final database.
    let bulk = PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .gindex_features(GindexConfig { max_edges: 5, ..GindexConfig::default() })
        .build(system.database().to_vec());
    let bulk_answers = bulk.search(&query, 2.0).answers;
    // Feature sets may differ slightly (mined from different corpora),
    // but verified answers are exact either way.
    assert_eq!(after.answers, bulk_answers, "incremental and bulk systems must agree");
    println!("\nincremental index agrees with a fresh bulk build — dynamic updates OK");
}
