//! Inside the partition-based search: selectivity, MWIS choices and the
//! tuning knobs of Algorithm 2.
//!
//! Shows, for one query, how the partition algorithm (Greedy vs
//! EnhancedGreedy vs exact MWIS), the selectivity cutoff λ and the
//! ε-filter change the partition weight and the candidate set — the
//! levers behind Figures 11 and 12 and ablation A1.
//!
//! Run with: `cargo run --release --example partition_tuning`

use pis::datasets::sample_query_set;
use pis::prelude::*;

fn main() {
    let generator = MoleculeGenerator::new(MoleculeConfig::default());
    let db = generator.database(400, 11);
    let system = PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .gindex_features(GindexConfig { max_edges: 6, ..GindexConfig::default() })
        .build(db.clone());

    let query = sample_query_set(&db, 12, 1, 5).remove(0);
    let sigma = 2.0;

    println!(
        "query: {} vertices / {} edges, sigma = {sigma}\n",
        query.vertex_count(),
        query.edge_count()
    );

    // The exact MWIS solver is capped at 128 overlap-graph nodes; check
    // the fragment pool first.
    let pool = system.search(&query, sigma).stats.fragments_in_pool;
    println!("fragment pool: {pool} fragments");
    let mut algos = vec![
        ("Greedy          ", PartitionAlgo::Greedy),
        ("EnhancedGreedy-2", PartitionAlgo::EnhancedGreedy(2)),
        ("EnhancedGreedy-3", PartitionAlgo::EnhancedGreedy(3)),
    ];
    if pool <= 60 {
        algos.push(("Exact MWIS      ", PartitionAlgo::Exact));
    } else {
        println!("(exact MWIS skipped: pool too large for the exact solver)");
    }

    // 1. Partition algorithms (ablation A1).
    println!("partition algorithm comparison:");
    for (name, algo) in algos {
        let cfg = PisConfig { partition: algo, ..PisConfig::default() };
        let o = system.search_with(&query, sigma, cfg);
        println!(
            "  {name}  |P| = {:2}  weight = {:6.3}  candidates = {:3}  answers = {:3}",
            o.stats.partition_size,
            o.stats.partition_weight,
            o.candidates.len(),
            o.answers.len()
        );
    }

    // 2. Lambda sweep (Figure 11): the selectivity ceiling for
    // fragments that miss a graph entirely.
    println!("\nlambda sweep (selectivity cutoff):");
    for lambda in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let cfg = PisConfig { lambda, ..PisConfig::default() };
        let o = system.search_with(&query, sigma, cfg);
        println!(
            "  lambda = {lambda:4}: partition weight = {:6.3}, candidates = {}",
            o.stats.partition_weight,
            o.candidates.len()
        );
    }

    // 3. Epsilon filter (Algorithm 2, line 5): drop fragments that are
    // everywhere and prune nothing.
    println!("\nepsilon sweep (fragment admission):");
    for epsilon in [0.0, 0.05, 0.2, 0.5, 1.0] {
        let cfg = PisConfig { epsilon, ..PisConfig::default() };
        let o = system.search_with(&query, sigma, cfg);
        println!(
            "  epsilon = {epsilon:4}: fragments {:3} -> pool {:3}, candidates = {}",
            o.stats.query_fragments,
            o.stats.fragments_in_pool,
            o.candidates.len()
        );
    }

    // Whatever the tuning, answers must not change — pruning is always
    // lossless.
    let reference = system.search(&query, sigma).answers;
    for lambda in [0.25, 4.0] {
        for epsilon in [0.0, 1.0] {
            for algo in [PartitionAlgo::Greedy, PartitionAlgo::EnhancedGreedy(2)] {
                let cfg = PisConfig { lambda, epsilon, partition: algo, ..PisConfig::default() };
                assert_eq!(
                    system.search_with(&query, sigma, cfg).answers,
                    reference,
                    "tuning must never change answers"
                );
            }
        }
    }
    println!("\nall tunings agree on the answer set — pruning is lossless");
}
