//! Quickstart: the paper's Example 1 in code.
//!
//! Three molecules share the query's ring topology but differ in bond
//! labels. With a mutation-distance threshold of σ < 2 the system must
//! return exactly the molecules needing at most one relabel — the first
//! and third, as in the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use pis::prelude::*;

/// Bond vocabulary for the demo.
const SINGLE: Label = Label(0);
const DOUBLE: Label = Label(1);
const CARBON: Label = Label(0);
const OXYGEN: Label = Label(2);

/// Builds a six-ring with the given bond labels and a one-atom tail.
fn molecule(ring_bonds: [Label; 6], tail_atom: Label) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let ring = b.add_vertices(6, VertexAttr::labeled(CARBON));
    for (i, &label) in ring_bonds.iter().enumerate() {
        b.add_edge(ring[i], ring[(i + 1) % 6], EdgeAttr::labeled(label))
            .expect("fresh ring is simple");
    }
    let tail = b.add_vertex(VertexAttr::labeled(tail_atom));
    b.add_edge(ring[0], tail, EdgeAttr::labeled(SINGLE)).expect("tail is fresh");
    b.build()
}

fn main() {
    // The database: an alternating ring (like the query), a ring one
    // mutation away, and a ring three mutations away.
    let db = vec![
        molecule([SINGLE, DOUBLE, SINGLE, DOUBLE, SINGLE, DOUBLE], OXYGEN), // exact
        molecule([SINGLE, DOUBLE, SINGLE, DOUBLE, SINGLE, SINGLE], CARBON), // 1 mutation
        molecule([SINGLE, SINGLE, SINGLE, SINGLE, SINGLE, SINGLE], OXYGEN), // 3 mutations
    ];

    // Build the system: edge-Hamming mutation distance (the paper's
    // evaluation distance), every structure up to 4 edges indexed.
    let system = PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .exhaustive_features(4)
        .build(db);

    // The query: the bare alternating ring.
    let mut qb = GraphBuilder::new();
    let ring = qb.add_vertices(6, VertexAttr::labeled(CARBON));
    for i in 0..6 {
        let label = if i % 2 == 0 { SINGLE } else { DOUBLE };
        qb.add_edge(ring[i], ring[(i + 1) % 6], EdgeAttr::labeled(label)).unwrap();
    }
    let query = qb.build();

    println!(
        "database: {} molecules, query: {} edges",
        system.database().len(),
        query.edge_count()
    );
    for sigma in [0.0, 1.0, 2.0, 3.0] {
        let outcome = system.search(&query, sigma);
        let ids: Vec<u32> = outcome.answers.iter().map(|g| g.0).collect();
        println!(
            "sigma = {sigma}: answers {ids:?}  (candidates inspected: {}, fragments used: {})",
            outcome.candidates.len(),
            outcome.stats.partition_size,
        );
    }

    // Paper Example 1: "mutation distance less than 2" returns the
    // first and the third graphs there; here molecules 0 and 1 are the
    // ones within distance 1.
    let outcome = system.search(&query, 1.0);
    assert_eq!(
        outcome.answers.iter().map(|g| g.0).collect::<Vec<_>>(),
        vec![0, 1],
        "molecules within one bond mutation"
    );
    println!("quickstart OK");
}
