//! Importing real chemistry data: SD files → PIS system.
//!
//! The paper's dataset is the NCI AIDS antiviral screen, distributed as
//! an SD file. This example parses MOL V2000 records (a small embedded
//! sample here; point `--` arguments at a real file), builds a PIS
//! system over them, and runs a ring query — the full real-data path.
//!
//! Run with:
//! `cargo run --release --example sdf_import [path/to/file.sdf]`

use pis::datasets::sdf::parse_sdf;
use pis::datasets::{AtomVocabulary, BondVocabulary, DatasetStats};
use pis::prelude::*;

/// A hand-written sample: benzene, pyridine, cyclohexane, phenol.
const SAMPLE_SDF: &str = "\
benzene


  6  6  0  0  0  0  0  0  0  0999 V2000
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
  1  2  4  0
  2  3  4  0
  3  4  4  0
  4  5  4  0
  5  6  4  0
  6  1  4  0
M  END
$$$$
pyridine


  6  6  0  0  0  0  0  0  0  0999 V2000
    0.0 0.0 0.0 N 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
  1  2  4  0
  2  3  4  0
  3  4  4  0
  4  5  4  0
  5  6  4  0
  6  1  4  0
M  END
$$$$
cyclohexane


  6  6  0  0  0  0  0  0  0  0999 V2000
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
  1  2  1  0
  2  3  1  0
  3  4  1  0
  4  5  1  0
  5  6  1  0
  6  1  1  0
M  END
$$$$
phenol


  7  7  0  0  0  0  0  0  0  0999 V2000
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 C 0 0
    0.0 0.0 0.0 O 0 0
  1  2  4  0
  2  3  4  0
  3  4  4  0
  4  5  4  0
  5  6  4  0
  6  1  4  0
  1  7  1  0
M  END
$$$$
";

fn main() {
    let atoms = AtomVocabulary::default();
    let bonds = BondVocabulary::default();

    // Load from a real file when given, else the embedded sample.
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => SAMPLE_SDF.to_string(),
    };
    let load = parse_sdf(&text, &atoms, &bonds);
    println!("parsed {} molecules ({} records skipped)", load.molecules.len(), load.skipped);
    println!("{}", DatasetStats::compute(&load.molecules));

    let system = PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .exhaustive_features(4)
        .build(load.molecules);

    // Query: an aromatic six-ring (benzene skeleton).
    let mut b = GraphBuilder::new();
    let aromatic = bonds.label_of("aromatic").expect("vocabulary has aromatic bonds");
    let carbon = atoms.label_of("C").expect("vocabulary has carbon");
    let vs = b.add_vertices(6, VertexAttr::labeled(carbon));
    for i in 0..6 {
        b.add_edge(vs[i], vs[(i + 1) % 6], EdgeAttr::labeled(aromatic)).unwrap();
    }
    let query = b.build();

    for sigma in [0.0, 2.0, 6.0] {
        let outcome = system.search(&query, sigma);
        println!(
            "aromatic ring query, sigma {sigma}: {} answers {:?} (distances {:?})",
            outcome.answers.len(),
            outcome.answers.iter().map(|g| g.0).collect::<Vec<_>>(),
            outcome.answer_distances
        );
    }

    // With the embedded sample: benzene, pyridine and phenol contain the
    // aromatic ring exactly; cyclohexane needs 6 bond mutations.
    if std::env::args().nth(1).is_none() {
        let exact = system.search(&query, 0.0);
        assert_eq!(exact.answers.len(), 3);
        let all = system.search(&query, 6.0);
        assert_eq!(all.answers.len(), 4);
        println!("sample assertions OK");
    }
}
