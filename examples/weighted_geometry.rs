//! Linear-distance search over weighted graphs — the paper's Example 3.
//!
//! When labels are numeric (bond lengths, charges), the superimposed
//! distance is the linear mutation distance `LD = Σ |w − w'|` and each
//! equivalence class is indexed by an R-tree over weight vectors; a
//! range query `LD ≤ σ` becomes an L1 ball query.
//!
//! Run with: `cargo run --release --example weighted_geometry`

use pis::datasets::sample_query_set;
use pis::prelude::*;

fn main() {
    // Weighted molecules: bond lengths in Å with per-molecule jitter.
    let generator =
        MoleculeGenerator::new(MoleculeConfig { weighted: true, ..MoleculeConfig::default() });
    let db = generator.database(300, 9);
    println!("database: {}", DatasetStats::compute(&db));

    // Edge-only linear distance (geometric comparison of bond lengths).
    let system = PisSystem::builder()
        .linear_distance(LinearDistance::edges_only())
        .exhaustive_features(3)
        .backend(Backend::RTree)
        .build(db.clone());
    println!(
        "R-tree index: {} classes / {} weight vectors",
        system.index().features().len(),
        system.index().total_entries()
    );

    // Query: a fragment sampled from the database, geometrically
    // perturbed — we search for conformations within a length budget.
    let queries = sample_query_set(&db, 8, 5, 3);
    for (i, q) in queries.iter().enumerate() {
        for sigma in [0.05, 0.25, 1.0] {
            let outcome = system.search(q, sigma);
            println!(
                "query {i}, sigma {sigma:4}: {} answers from {} candidates",
                outcome.answers.len(),
                outcome.candidates.len()
            );
            // The query came from the database: its source must match at
            // any budget.
            assert!(
                !outcome.answers.is_empty(),
                "a database-sampled query must match its source graph"
            );
        }
    }

    // Cross-check the R-tree against the metric VP-tree backend.
    let vp_system = PisSystem::builder()
        .linear_distance(LinearDistance::edges_only())
        .exhaustive_features(3)
        .backend(Backend::VpTree)
        .build(db);
    for q in &queries {
        let a = system.search(q, 0.25);
        let b = vp_system.search(q, 0.25);
        assert_eq!(a.answers, b.answers, "backends must agree");
    }
    println!("R-tree and VP-tree backends agree — weighted search OK");
}
