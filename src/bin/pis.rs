//! `pis` — command-line interface to the PIS graph search system.
//!
//! ```text
//! pis generate --count 1000 --seed 42 --out db.lg [--weighted]
//! pis import   screen.sdf --out db.lg
//! pis stats    db.lg
//! pis sample   db.lg --edges 16 --count 5 --seed 7 --out queries.lg
//! pis build    db.lg --out index.pis [--max-edges 5] [--features gindex|paths|exhaustive]
//! pis search   db.lg --index index.pis --query queries.lg --sigma 2 [--baseline topo|naive]
//! pis knn      db.lg --index index.pis --query queries.lg -k 5
//! pis snapshot db.lg --index index.pis --out store/
//! pis compact  store/
//! pis check    store/
//! pis dot      db.lg --graph 3
//! ```
//!
//! Graph databases use the `pis_graph::io` text format; indexes use
//! `pis_index::persist`. `snapshot` converts a text pair into a durable
//! directory (checksummed binary snapshot + write-ahead log) which
//! `compact` recovers, merges and rotates. Every subcommand prints to
//! stdout.

use std::io::BufReader;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use pis::datasets::sdf::parse_sdf;
use pis::datasets::{sample_query_set, AtomVocabulary, BondVocabulary, DatasetStats};
use pis::graph::io::{parse_database, to_dot, write_database};
use pis::index::{load_index, save_index, FragmentIndex, IndexConfig, IndexDistance};
use pis::mining::{exhaustive::exhaustive_features, paths::path_features, select_features};
use pis::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  pis generate --count N [--seed S] [--weighted] --out DB.lg
  pis import   FILE.sdf --out DB.lg
  pis stats    DB.lg
  pis sample   DB.lg --edges M [--count N] [--seed S] --out QUERIES.lg
  pis build    DB.lg --out INDEX.pis [--max-edges L] [--features gindex|paths|exhaustive]
  pis search   DB.lg --index INDEX.pis --query QUERIES.lg --sigma S [--baseline topo|naive]
               [--explain] [--time-limit-ms T] [--node-limit N] [--shards N]
  pis knn      DB.lg --index INDEX.pis --query QUERIES.lg -k K [--time-limit-ms T] [--node-limit N]
               [--shards N]
  pis snapshot DB.lg --index INDEX.pis --out DIR
  pis compact  DIR
  pis check    DIR
  pis dot      DB.lg [--graph I]";

/// Builds a [`QueryBudget`] from the shared `--time-limit-ms` /
/// `--node-limit` flags (unlimited when neither is given).
fn parse_budget(flags: &Flags<'_>) -> Result<QueryBudget, String> {
    let mut budget = QueryBudget::unlimited();
    if let Some(ms) = flags.value("time-limit-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("invalid --time-limit-ms: '{ms}'"))?;
        budget.time_limit = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = flags.value("node-limit") {
        let n: u64 = n.parse().map_err(|_| format!("invalid --node-limit: '{n}'"))?;
        budget.node_limit = Some(n);
    }
    Ok(budget)
}

/// Builds the optional [`ShardConfig`] from `--shards N` (unsharded
/// when absent; `--shards 1` still exercises the scatter-gather path).
fn parse_shards(flags: &Flags<'_>) -> Result<Option<ShardConfig>, String> {
    match flags.value("shards") {
        None => Ok(None),
        Some(n) => {
            let n: usize = n.parse().map_err(|_| format!("invalid --shards: '{n}'"))?;
            if n == 0 {
                return Err("--shards needs at least 1".into());
            }
            Ok(Some(ShardConfig::new(n)))
        }
    }
}

/// Prints the stale-R-tree warning when any class would answer through
/// its slow unfrozen path (someone forgot to compact after bulk
/// mutation).
fn warn_stale_rtrees(index: &FragmentIndex) {
    let stale = index.rtree_stale_classes();
    if stale > 0 {
        println!(
            "warning: {stale} class R-tree(s) are stale (unfrozen); queries take the slow \
             path — run `pis compact` on the store or rebuild the index"
        );
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let command = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&String> = it.collect();
    match command.as_str() {
        "generate" => cmd_generate(&rest),
        "import" => cmd_import(&rest),
        "stats" => cmd_stats(&rest),
        "sample" => cmd_sample(&rest),
        "build" => cmd_build(&rest),
        "search" => cmd_search(&rest),
        "knn" => cmd_knn(&rest),
        "snapshot" => cmd_snapshot(&rest),
        "compact" => cmd_compact(&rest),
        "check" => cmd_check(&rest),
        "dot" => cmd_dot(&rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Minimal flag parser: positional args plus `--flag value` / `--flag`.
struct Flags<'a> {
    positional: Vec<&'a str>,
    named: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &[&'a String], value_flags: &[&str]) -> Result<Self, String> {
        let mut flags = Flags { positional: Vec::new(), named: Vec::new() };
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if let Some(name) = a.strip_prefix('-').map(|s| s.trim_start_matches('-')) {
                if value_flags.contains(&name) {
                    i += 1;
                    let value =
                        args.get(i).ok_or_else(|| format!("flag --{name} needs a value"))?;
                    flags.named.push((name, Some(value.as_str())));
                } else {
                    flags.named.push((name, None));
                }
            } else {
                flags.positional.push(a);
            }
            i += 1;
        }
        Ok(flags)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.named.iter().find(|(n, _)| *n == name).and_then(|(_, v)| *v)
    }

    fn has(&self, name: &str) -> bool {
        self.named.iter().any(|(n, _)| *n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{name}: '{v}'")),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.value(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positional.get(idx).copied().ok_or_else(|| format!("missing {what}"))
    }
}

fn load_db(path: &str) -> Result<Vec<LabeledGraph>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_database(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_idx(path: &str) -> Result<FragmentIndex, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    load_index(BufReader::new(file)).map_err(|e| e.to_string())
}

fn cmd_generate(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["count", "seed", "out"])?;
    let count: usize = flags.num("count", 1000)?;
    let seed: u64 = flags.num("seed", 42)?;
    let out = PathBuf::from(flags.required("out")?);
    let config = MoleculeConfig { weighted: flags.has("weighted"), ..MoleculeConfig::default() };
    let db = MoleculeGenerator::new(config).database(count, seed);
    std::fs::write(&out, write_database(&db)).map_err(|e| e.to_string())?;
    println!("wrote {} molecules to {}", db.len(), out.display());
    Ok(())
}

fn cmd_import(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["out"])?;
    let input = flags.positional(0, "input .sdf file")?;
    let out = PathBuf::from(flags.required("out")?);
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let load = parse_sdf(&text, &AtomVocabulary::default(), &BondVocabulary::default());
    std::fs::write(&out, write_database(&load.molecules)).map_err(|e| e.to_string())?;
    println!(
        "imported {} molecules ({} records skipped) into {}",
        load.molecules.len(),
        load.skipped,
        out.display()
    );
    Ok(())
}

fn cmd_stats(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let db = load_db(flags.positional(0, "database file")?)?;
    let stats = DatasetStats::compute(&db);
    print!("{}", stats.render(&AtomVocabulary::default(), &BondVocabulary::default()));
    Ok(())
}

fn cmd_sample(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["edges", "count", "seed", "out"])?;
    let db = load_db(flags.positional(0, "database file")?)?;
    let edges: usize = flags.num("edges", 16)?;
    let count: usize = flags.num("count", 5)?;
    let seed: u64 = flags.num("seed", 7)?;
    let out = PathBuf::from(flags.required("out")?);
    let queries = sample_query_set(&db, edges, count, seed);
    std::fs::write(&out, write_database(&queries)).map_err(|e| e.to_string())?;
    println!("sampled {count} Q{edges} queries into {}", out.display());
    Ok(())
}

fn cmd_build(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["out", "max-edges", "features", "min-support"])?;
    let db_path = flags.positional(0, "database file")?;
    let db = load_db(db_path)?;
    let out = PathBuf::from(flags.required("out")?);
    let max_edges: usize = flags.num("max-edges", 5)?;
    let min_support: f64 = flags.num("min-support", 0.02)?;
    let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
    let start = Instant::now();
    let features = match flags.value("features").unwrap_or("gindex") {
        "gindex" => select_features(
            &structures,
            &GindexConfig {
                max_edges,
                min_support_fraction: min_support,
                ..GindexConfig::default()
            },
        ),
        "paths" => path_features(&structures, max_edges),
        "exhaustive" => exhaustive_features(&structures, max_edges),
        other => return Err(format!("unknown feature source '{other}'")),
    };
    let weighted = db.iter().any(|g| g.total_weight() != 0.0);
    let distance = if weighted {
        IndexDistance::Linear(LinearDistance::edges_only())
    } else {
        IndexDistance::Mutation(MutationDistance::edge_hamming())
    };
    let index = FragmentIndex::build(&db, features, distance, &IndexConfig::default());
    // Rotate atomically: a kill mid-save must not leave a torn index
    // where a previous good one stood.
    let mut buf = Vec::new();
    save_index(&index, &mut buf).map_err(|e| e.to_string())?;
    pis::index::codec::atomic_write(&out, &buf).map_err(|e| e.to_string())?;
    println!(
        "indexed {} graphs: {} classes, {} entries, {:?}; saved to {}",
        db.len(),
        index.features().len(),
        index.total_entries(),
        start.elapsed(),
        out.display()
    );
    Ok(())
}

fn cmd_search(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(
        args,
        &["index", "query", "sigma", "baseline", "time-limit-ms", "node-limit", "shards"],
    )?;
    let db = load_db(flags.positional(0, "database file")?)?;
    let index = load_idx(flags.required("index")?)?;
    let queries = load_db(flags.required("query")?)?;
    let sigma: f64 = flags.num("sigma", 2.0)?;
    let explain = flags.has("explain");
    let budget = parse_budget(&flags)?;
    let shard = parse_shards(&flags)?;
    if db.len() != index.graph_count() {
        return Err("database and index sizes differ".into());
    }
    warn_stale_rtrees(&index);
    let config = PisConfig { budget: budget.clone(), shard, ..PisConfig::default() };
    let searcher = pis::core::PisSearcher::new(&index, &db, config);
    for (qi, q) in queries.iter().enumerate() {
        let start = Instant::now();
        let (answers, distances, candidates) = match flags.value("baseline") {
            None => {
                let o = searcher.try_search(q, sigma).map_err(|e| format!("query {qi}: {e}"))?;
                if explain {
                    print!("{}", pis::core::explain(&o, &index, sigma));
                }
                if let Completeness::Truncated { phase, .. } = &o.completeness {
                    println!(
                        "query {qi}: budget exhausted in {} — answers below are verified, \
                         {} candidates left undecided",
                        phase.name(),
                        o.possible.len()
                    );
                }
                if let Completeness::Degraded { shards } = &o.completeness {
                    println!(
                        "query {qi}: shard(s) {shards:?} stayed dark — answers below are a \
                         verified subset (missing shards never prune)"
                    );
                }
                (o.answers, o.answer_distances, o.candidates.len())
            }
            Some("topo") => {
                let o = pis::core::topo_prune(&index, &db, q, sigma);
                (o.answers, Vec::new(), o.candidates.len())
            }
            Some("naive") => {
                let md = MutationDistance::edge_hamming();
                let o = pis::core::naive_scan(&db, q, &md, sigma);
                (o.answers, Vec::new(), o.candidates.len())
            }
            Some(other) => return Err(format!("unknown baseline '{other}'")),
        };
        println!(
            "query {qi} ({}V/{}E): {} answers from {} candidates in {:?}",
            q.vertex_count(),
            q.edge_count(),
            answers.len(),
            candidates,
            start.elapsed()
        );
        for (i, g) in answers.iter().enumerate() {
            match distances.get(i) {
                Some(d) => println!("  {g} (distance {d})"),
                None => println!("  {g}"),
            }
        }
    }
    Ok(())
}

fn cmd_knn(args: &[&String]) -> Result<(), String> {
    let flags =
        Flags::parse(args, &["index", "query", "k", "time-limit-ms", "node-limit", "shards"])?;
    let db = load_db(flags.positional(0, "database file")?)?;
    let index = load_idx(flags.required("index")?)?;
    let queries = load_db(flags.required("query")?)?;
    let k: usize = flags.num("k", 5)?;
    let budget = parse_budget(&flags)?;
    let shard = parse_shards(&flags)?;
    warn_stale_rtrees(&index);
    let config = PisConfig { budget, shard, ..PisConfig::default() };
    let searcher = pis::core::PisSearcher::new(&index, &db, config);
    for (qi, q) in queries.iter().enumerate() {
        let start = Instant::now();
        let knn = searcher
            .try_knn(q, k, 1.0, (q.edge_count() + q.vertex_count()) as f64)
            .map_err(|e| format!("query {qi}: {e}"))?;
        println!(
            "query {qi}: {} neighbors (radius {}) in {:?}",
            knn.neighbors.len(),
            knn.radius,
            start.elapsed()
        );
        if let Completeness::Truncated { .. } = &knn.completeness {
            println!(
                "query {qi}: budget exhausted — neighbors are best-so-far, \
                 certified up to radius {}",
                knn.certified_radius
            );
        }
        if let Completeness::Degraded { shards } = &knn.completeness {
            println!(
                "query {qi}: shard(s) {shards:?} stayed dark — neighbors are drawn from \
                 the healthy shards only"
            );
        }
        for n in &knn.neighbors {
            println!("  {} distance {}", n.graph, n.distance);
        }
    }
    Ok(())
}

fn cmd_snapshot(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["index", "out"])?;
    let db = load_db(flags.positional(0, "database file")?)?;
    let index = load_idx(flags.required("index")?)?;
    let out = PathBuf::from(flags.required("out")?);
    let graphs = db.len();
    let system =
        PisSystem::from_parts(db, index, PisConfig::default()).map_err(|e| e.to_string())?;
    let store = pis::DurableSystem::create(&out, system).map_err(|e| e.to_string())?;
    println!(
        "snapshotted {graphs} graphs into {} (snapshot.pis + wal.log, WAL at {} bytes)",
        out.display(),
        store.wal_len()
    );
    Ok(())
}

fn cmd_compact(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let dir = PathBuf::from(flags.positional(0, "durable directory")?);
    let start = Instant::now();
    let mut store =
        pis::DurableSystem::open(&dir, PisConfig::default()).map_err(|e| e.to_string())?;
    let report = store.report().clone();
    if report.clean() {
        println!("recovery: clean (snapshot covers every acknowledged insert)");
    } else {
        println!(
            "recovery: {} WAL records replayed, {} already in the snapshot, \
             {} torn tail bytes truncated",
            report.wal_records_replayed, report.wal_records_skipped, report.torn_tail_bytes
        );
    }
    let pending = store.pending_entries();
    store.compact().map_err(|e| e.to_string())?;
    println!(
        "compacted {}: {pending} pending entries merged, {} graphs durable, \
         WAL truncated to {} bytes in {:?}",
        dir.display(),
        store.system().database().len(),
        store.wal_len(),
        start.elapsed()
    );
    Ok(())
}

fn cmd_check(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let dir = PathBuf::from(flags.positional(0, "durable directory")?);
    let start = Instant::now();
    let report =
        pis::check_store(&dir).map_err(|e| format!("store {} is corrupt: {e}", dir.display()))?;
    println!("checking {}", dir.display());
    println!("  snapshot: {} bytes, all section and footer checksums valid", report.snapshot_bytes);
    println!(
        "  index:    {} classes ({} trie, {} r-tree, {} vp-tree), \
         {} frozen + {} pending entries, all invariants hold",
        report.index.classes,
        report.index.trie_classes,
        report.index.rtree_classes,
        report.index.vptree_classes,
        report.index.frozen_entries,
        report.index.pending_entries
    );
    if report.index.rtree_stale_classes > 0 {
        println!(
            "  warning:  {} r-tree class(es) stale (unfrozen slow path) — run `pis compact`",
            report.index.rtree_stale_classes
        );
    }
    println!(
        "  wal:      {} bytes, {} records ({} replayable, {} already in the snapshot), \
         {} torn tail bytes",
        report.wal_bytes,
        report.wal_records,
        report.wal_replayed,
        report.wal_skipped,
        report.torn_tail_bytes
    );
    println!("  replay:   {} graphs after WAL replay, invariants re-verified", report.graphs);
    println!("ok: store is consistent ({:?})", start.elapsed());
    Ok(())
}

fn cmd_dot(args: &[&String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["graph"])?;
    let db = load_db(flags.positional(0, "database file")?)?;
    let idx: usize = flags.num("graph", 0)?;
    let g = db.get(idx).ok_or_else(|| format!("graph {idx} out of range (db has {})", db.len()))?;
    print!("{}", to_dot(g, &format!("g{idx}")));
    Ok(())
}
