//! Crash-safe durable deployment: a checksummed binary snapshot plus a
//! write-ahead log, recovered on open.
//!
//! The durability contract:
//!
//! - [`DurableSystem::insert_graph`] returns only after the record is
//!   appended to the WAL **and fsynced** — an acknowledged insert
//!   survives any subsequent crash and is queryable after reopen.
//! - An insert interrupted before the fsync completes is cleanly
//!   absent after reopen (the torn tail is truncated away), never
//!   half-applied.
//! - [`DurableSystem::compact`] merges the LSM pending buffers,
//!   rotates a fresh snapshot into place atomically (temp + fsync +
//!   rename) and only then truncates the WAL. A crash between the two
//!   steps merely leaves stale records that replay idempotently.
//! - Corruption anywhere — snapshot or mid-log — surfaces as a typed
//!   [`PersistError`], never a panic; only a *torn tail* (the one
//!   shape a kill can legitimately produce) is repaired silently.

use std::path::{Path, PathBuf};

use pis_core::PisConfig;
use pis_graph::{GraphId, LabeledGraph};
use pis_index::{load_snapshot, wal, write_snapshot, IndexCheckReport, PersistError, Wal};

use crate::PisSystem;

/// What [`DurableSystem::open`] found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records applied on top of the snapshot (inserts acknowledged
    /// after the snapshot was taken).
    pub wal_records_replayed: usize,
    /// WAL records skipped because the snapshot already contained them
    /// (a crash interrupted compaction between snapshot rotation and
    /// WAL truncation).
    pub wal_records_skipped: usize,
    /// Bytes of torn (unacknowledged) tail truncated off the WAL.
    pub torn_tail_bytes: u64,
}

impl RecoveryReport {
    /// Whether open had anything to repair or replay.
    pub fn clean(&self) -> bool {
        self == &RecoveryReport::default()
    }
}

/// What [`check_store`] verified, section by section — the offline
/// fsck's evidence that a durable directory is internally consistent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreCheckReport {
    /// Size of `snapshot.pis` (all section and footer CRCs verified).
    pub snapshot_bytes: u64,
    /// Size of `wal.log` as found on disk.
    pub wal_bytes: u64,
    /// Complete, CRC-valid records in the WAL.
    pub wal_records: usize,
    /// WAL records the snapshot does not yet cover (replayed to verify
    /// they apply cleanly).
    pub wal_replayed: usize,
    /// WAL records already covered by the snapshot (stale but
    /// idempotent — a crash between snapshot rotation and WAL
    /// truncation leaves these).
    pub wal_skipped: usize,
    /// Bytes of torn (unacknowledged) tail past the last valid record.
    /// `check_store` never repairs; it only reports.
    pub torn_tail_bytes: u64,
    /// Graphs in the store after WAL replay.
    pub graphs: usize,
    /// Per-structure tallies from the deep index validation
    /// ([`pis_index::FragmentIndex::validate`]) after WAL replay.
    pub index: IndexCheckReport,
}

/// Offline fsck of a durable directory: verifies every structural
/// invariant [`DurableSystem::open`] relies on, **without modifying the
/// store** (unlike `open`, a torn WAL tail is reported, not truncated).
///
/// Checks, in order: the snapshot's magic/version/section CRCs and
/// footer, the deep index invariants on the decoded structures (trie
/// arena tiling, R-tree fanout/MBR containment, posting-list and
/// pending-buffer consistency), WAL framing, that every committed WAL
/// record replays cleanly on top of the snapshot, and the index
/// invariants again on the replayed state. Any violation surfaces as a
/// typed [`PersistError`] — never a panic.
pub fn check_store(dir: &Path) -> Result<StoreCheckReport, PersistError> {
    let invariant =
        |m: String| PersistError::Corrupt { offset: 0, message: format!("index invariant: {m}") };
    let snapshot_bytes = std::fs::read(dir.join(SNAPSHOT_FILE)).map_err(PersistError::Io)?;
    // decode_snapshot validates CRCs and runs the deep index fsck.
    let (mut index, mut database) = pis_index::decode_snapshot(&snapshot_bytes)?;
    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).map_err(PersistError::Io)?;
    let replay = wal::replay_bytes(&wal_bytes)?;
    let mut report = StoreCheckReport {
        snapshot_bytes: snapshot_bytes.len() as u64,
        wal_bytes: wal_bytes.len() as u64,
        wal_records: replay.records.len(),
        torn_tail_bytes: replay.torn_tail_bytes,
        ..StoreCheckReport::default()
    };
    for (gid, graph) in replay.records {
        let next = database.len();
        if gid.index() < next {
            report.wal_skipped += 1;
            continue;
        }
        if gid.index() > next {
            return Err(PersistError::Corrupt {
                offset: replay.valid_len,
                message: format!(
                    "WAL names graph {} but the store holds {next} graphs",
                    gid.index()
                ),
            });
        }
        index.insert_graph_pending(&graph);
        database.push(graph);
        report.wal_replayed += 1;
    }
    report.index = index.validate().map_err(invariant)?;
    report.graphs = database.len();
    Ok(report)
}

/// A [`PisSystem`] bound to an on-disk directory (`snapshot.pis` +
/// `wal.log`) with write-ahead-logged inserts.
pub struct DurableSystem {
    system: PisSystem,
    wal: Wal,
    snapshot_path: PathBuf,
    report: RecoveryReport,
}

/// File name of the binary snapshot inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pis";
/// File name of the write-ahead log inside a durable directory.
pub const WAL_FILE: &str = "wal.log";

impl DurableSystem {
    /// Initializes `dir` from an in-memory system: writes the first
    /// snapshot (compacting pending buffers first) and an empty WAL.
    pub fn create(dir: &Path, mut system: PisSystem) -> Result<DurableSystem, PersistError> {
        std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        write_snapshot(&snapshot_path, &mut system.index, &system.database)?;
        let (mut wal, _) = Wal::open(&dir.join(WAL_FILE))?;
        // Stale records from a previous deployment in the same
        // directory must not replay over the fresh snapshot.
        wal.reset().map_err(PersistError::Io)?;
        Ok(DurableSystem { system, wal, snapshot_path, report: RecoveryReport::default() })
    }

    /// Opens a directory written by [`DurableSystem::create`]: loads and
    /// validates the snapshot, repairs a torn WAL tail, and replays
    /// every committed WAL record into the LSM pending buffers.
    pub fn open(dir: &Path, config: PisConfig) -> Result<DurableSystem, PersistError> {
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let (index, database) = load_snapshot(&snapshot_path)?;
        let mut system = PisSystem { database, index, config };
        let (wal, replay) = Wal::open(&dir.join(WAL_FILE))?;
        let mut report =
            RecoveryReport { torn_tail_bytes: replay.torn_tail_bytes, ..RecoveryReport::default() };
        for (gid, graph) in replay.records {
            let next = system.database.len();
            if gid.index() < next {
                // Snapshot already covers it: compaction crashed after
                // the snapshot rename but before WAL truncation.
                report.wal_records_skipped += 1;
                continue;
            }
            if gid.index() > next {
                return Err(PersistError::Corrupt {
                    offset: wal.committed_len(),
                    message: format!(
                        "WAL names graph {} but the store holds {next} graphs",
                        gid.index()
                    ),
                });
            }
            system.index.insert_graph_pending(&graph);
            system.database.push(graph);
            report.wal_records_replayed += 1;
        }
        Ok(DurableSystem { system, wal, snapshot_path, report })
    }

    /// Durably inserts a graph: the WAL record is fsynced before the
    /// in-memory system is touched, so a returned id is a promise the
    /// insert survives a crash. On error nothing was applied.
    pub fn insert_graph(&mut self, graph: LabeledGraph) -> Result<GraphId, PersistError> {
        let gid = GraphId(self.system.database.len() as u32);
        self.wal.append(gid, &graph)?;
        let applied = self.system.index.insert_graph_pending(&graph);
        debug_assert_eq!(applied, gid);
        self.system.database.push(graph);
        Ok(gid)
    }

    /// Merges pending buffers into the frozen structures, rotates a
    /// fresh snapshot into place and truncates the WAL.
    pub fn compact(&mut self) -> Result<(), PersistError> {
        write_snapshot(&self.snapshot_path, &mut self.system.index, &self.system.database)?;
        self.wal.reset().map_err(PersistError::Io)?;
        Ok(())
    }

    /// What recovery found when this store was opened.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The wrapped system (all query entry points).
    pub fn system(&self) -> &PisSystem {
        &self.system
    }

    /// Consumes the store, detaching the in-memory system from disk.
    pub fn into_system(self) -> PisSystem {
        self.system
    }

    /// Entries awaiting a merge in the LSM pending buffers.
    pub fn pending_entries(&self) -> usize {
        self.system.index().pending_entries()
    }

    /// Committed WAL bytes (8 when empty — the magic header).
    pub fn wal_len(&self) -> u64 {
        self.wal.committed_len()
    }
}
