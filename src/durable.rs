//! Crash-safe durable deployment: a checksummed binary snapshot plus a
//! write-ahead log, recovered on open.
//!
//! The durability contract:
//!
//! - [`DurableSystem::insert_graph`] returns only after the record is
//!   appended to the WAL **and fsynced** — an acknowledged insert
//!   survives any subsequent crash and is queryable after reopen.
//! - An insert interrupted before the fsync completes is cleanly
//!   absent after reopen (the torn tail is truncated away), never
//!   half-applied.
//! - [`DurableSystem::compact`] merges the LSM pending buffers,
//!   rotates a fresh snapshot into place atomically (temp + fsync +
//!   rename) and only then truncates the WAL. A crash between the two
//!   steps merely leaves stale records that replay idempotently.
//! - Corruption anywhere — snapshot or mid-log — surfaces as a typed
//!   [`PersistError`], never a panic; only a *torn tail* (the one
//!   shape a kill can legitimately produce) is repaired silently.

use std::path::{Path, PathBuf};

use pis_core::PisConfig;
use pis_graph::{GraphId, LabeledGraph};
use pis_index::{load_snapshot, write_snapshot, PersistError, Wal};

use crate::PisSystem;

/// What [`DurableSystem::open`] found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records applied on top of the snapshot (inserts acknowledged
    /// after the snapshot was taken).
    pub wal_records_replayed: usize,
    /// WAL records skipped because the snapshot already contained them
    /// (a crash interrupted compaction between snapshot rotation and
    /// WAL truncation).
    pub wal_records_skipped: usize,
    /// Bytes of torn (unacknowledged) tail truncated off the WAL.
    pub torn_tail_bytes: u64,
}

impl RecoveryReport {
    /// Whether open had anything to repair or replay.
    pub fn clean(&self) -> bool {
        self == &RecoveryReport::default()
    }
}

/// A [`PisSystem`] bound to an on-disk directory (`snapshot.pis` +
/// `wal.log`) with write-ahead-logged inserts.
pub struct DurableSystem {
    system: PisSystem,
    wal: Wal,
    snapshot_path: PathBuf,
    report: RecoveryReport,
}

/// File name of the binary snapshot inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pis";
/// File name of the write-ahead log inside a durable directory.
pub const WAL_FILE: &str = "wal.log";

impl DurableSystem {
    /// Initializes `dir` from an in-memory system: writes the first
    /// snapshot (compacting pending buffers first) and an empty WAL.
    pub fn create(dir: &Path, mut system: PisSystem) -> Result<DurableSystem, PersistError> {
        std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        write_snapshot(&snapshot_path, &mut system.index, &system.database)?;
        let (mut wal, _) = Wal::open(&dir.join(WAL_FILE))?;
        // Stale records from a previous deployment in the same
        // directory must not replay over the fresh snapshot.
        wal.reset().map_err(PersistError::Io)?;
        Ok(DurableSystem { system, wal, snapshot_path, report: RecoveryReport::default() })
    }

    /// Opens a directory written by [`DurableSystem::create`]: loads and
    /// validates the snapshot, repairs a torn WAL tail, and replays
    /// every committed WAL record into the LSM pending buffers.
    pub fn open(dir: &Path, config: PisConfig) -> Result<DurableSystem, PersistError> {
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let (index, database) = load_snapshot(&snapshot_path)?;
        let mut system = PisSystem { database, index, config };
        let (wal, replay) = Wal::open(&dir.join(WAL_FILE))?;
        let mut report =
            RecoveryReport { torn_tail_bytes: replay.torn_tail_bytes, ..RecoveryReport::default() };
        for (gid, graph) in replay.records {
            let next = system.database.len();
            if gid.index() < next {
                // Snapshot already covers it: compaction crashed after
                // the snapshot rename but before WAL truncation.
                report.wal_records_skipped += 1;
                continue;
            }
            if gid.index() > next {
                return Err(PersistError::Corrupt {
                    offset: wal.committed_len(),
                    message: format!(
                        "WAL names graph {} but the store holds {next} graphs",
                        gid.index()
                    ),
                });
            }
            system.index.insert_graph_pending(&graph);
            system.database.push(graph);
            report.wal_records_replayed += 1;
        }
        Ok(DurableSystem { system, wal, snapshot_path, report })
    }

    /// Durably inserts a graph: the WAL record is fsynced before the
    /// in-memory system is touched, so a returned id is a promise the
    /// insert survives a crash. On error nothing was applied.
    pub fn insert_graph(&mut self, graph: LabeledGraph) -> Result<GraphId, PersistError> {
        let gid = GraphId(self.system.database.len() as u32);
        self.wal.append(gid, &graph).map_err(PersistError::Io)?;
        let applied = self.system.index.insert_graph_pending(&graph);
        debug_assert_eq!(applied, gid);
        self.system.database.push(graph);
        Ok(gid)
    }

    /// Merges pending buffers into the frozen structures, rotates a
    /// fresh snapshot into place and truncates the WAL.
    pub fn compact(&mut self) -> Result<(), PersistError> {
        write_snapshot(&self.snapshot_path, &mut self.system.index, &self.system.database)?;
        self.wal.reset().map_err(PersistError::Io)?;
        Ok(())
    }

    /// What recovery found when this store was opened.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The wrapped system (all query entry points).
    pub fn system(&self) -> &PisSystem {
        &self.system
    }

    /// Consumes the store, detaching the in-memory system from disk.
    pub fn into_system(self) -> PisSystem {
        self.system
    }

    /// Entries awaiting a merge in the LSM pending buffers.
    pub fn pending_entries(&self) -> usize {
        self.system.index().pending_entries()
    }

    /// Committed WAL bytes (8 when empty — the magic header).
    pub fn wal_len(&self) -> u64 {
        self.wal.committed_len()
    }
}
