//! # PIS — Partition-based Graph Index and Search
//!
//! A full Rust implementation of *"Searching Substructures with
//! Superimposed Distance"* (Yan, Zhu, Han, Yu — ICDE 2006): similarity
//! search over graph databases where the query must appear as a
//! subgraph **and** the labels/weights superimposed on that occurrence
//! must stay within a distance budget `σ`.
//!
//! This facade re-exports the workspace crates and offers a one-stop
//! [`PisSystem`] for common use:
//!
//! ```
//! use pis::prelude::*;
//!
//! // A toy database of labeled rings.
//! let db: Vec<LabeledGraph> = (0..4u32)
//!     .map(|i| {
//!         let mut b = GraphBuilder::new();
//!         let vs = b.add_vertices(6, VertexAttr::labeled(Label(0)));
//!         for k in 0..6 {
//!             let label = Label(if k == 0 { i } else { 1 });
//!             b.add_edge(vs[k], vs[(k + 1) % 6], EdgeAttr::labeled(label)).unwrap();
//!         }
//!         b.build()
//!     })
//!     .collect();
//!
//! let system = PisSystem::builder().exhaustive_features(3).build(db);
//! let query = system.database()[1].clone();
//! let hits = system.search(&query, 1.0);
//! assert!(hits.answers.len() >= 2); // rings within one edge mutation
//! ```
//!
//! ## Crate map
//!
//! | Crate | Paper section | Contents |
//! |-------|---------------|----------|
//! | [`graph`] | §2 | labeled graphs, VF2, DFS codes, enumeration |
//! | [`distance`] | §2 | mutation & linear distances, brute oracle |
//! | [`mining`] | §4 | gSpan, gIndex, GraphGrep path features |
//! | [`index`] | §4 | fragment index: trie / R-tree / VP-tree |
//! | [`partition`] | §5 | overlapping-relation graph, MWIS solvers |
//! | [`core`] | §3–6 | Algorithm 2, verification, baselines |
//! | [`datasets`] | §7 | synthetic chemical generator, SDF, queries |

#![forbid(unsafe_code)]

pub mod durable;

pub use durable::{check_store, DurableSystem, RecoveryReport, StoreCheckReport};
pub use pis_core as core;
pub use pis_datasets as datasets;
pub use pis_distance as distance;
pub use pis_graph as graph;
pub use pis_index as index;
pub use pis_mining as mining;
pub use pis_partition as partition;

use pis_core::{
    BaselineOutcome, KnnOutcome, PisConfig, PisSearcher, QueryBudget, QueryError, SearchOutcome,
};
use pis_distance::{LinearDistance, MutationDistance};
use pis_graph::{GraphId, LabeledGraph};
use pis_index::{Backend, FragmentIndex, IndexConfig, IndexDistance};
use pis_mining::{FeatureSet, GindexConfig};

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::{DurableSystem, FeatureSource, PisSystem, PisSystemBuilder, RecoveryReport};
    pub use pis_core::{
        BudgetStats, Completeness, KnnOutcome, Neighbor, PartitionAlgo, PisConfig, QueryBudget,
        QueryError, SearchOutcome, SearchScratch, SearchStats, ShardConfig, ShardError,
        ShardHealthSnapshot, TruncationPhase, VerifyScratch, VerifyStats,
    };
    pub use pis_datasets::{DatasetStats, MoleculeConfig, MoleculeGenerator};
    pub use pis_distance::{LinearDistance, MutationDistance, ScoreMatrix, SuperimposedDistance};
    pub use pis_graph::{
        EdgeAttr, EdgeId, GraphBuilder, GraphId, Label, LabeledGraph, VertexAttr, VertexId,
    };
    pub use pis_index::{Backend, IndexDistance};
    pub use pis_mining::GindexConfig;
}

/// How index features are selected (Section 4, step 1).
#[derive(Clone, Debug)]
pub enum FeatureSource {
    /// Discriminative frequent structures (gIndex, the paper's default).
    GIndex(GindexConfig),
    /// Path structures up to the given length (GraphGrep).
    Paths(usize),
    /// Every structure up to the given edge count (exact; small
    /// databases only).
    Exhaustive(usize),
}

impl Default for FeatureSource {
    fn default() -> Self {
        FeatureSource::GIndex(GindexConfig::default())
    }
}

/// Builder for [`PisSystem`].
#[derive(Clone, Debug, Default)]
pub struct PisSystemBuilder {
    distance: Option<IndexDistance>,
    features: FeatureSource,
    backend: Backend,
    index_config: IndexConfig,
    search_config: PisConfig,
}

impl PisSystemBuilder {
    /// A builder with the paper's defaults: edge-Hamming mutation
    /// distance, gIndex features, trie backend, greedy partition.
    pub fn new() -> Self {
        PisSystemBuilder::default()
    }

    /// Use a mutation distance (categorical labels).
    pub fn mutation_distance(mut self, md: MutationDistance) -> Self {
        self.distance = Some(IndexDistance::Mutation(md));
        self
    }

    /// Use a linear distance (numeric weights).
    pub fn linear_distance(mut self, ld: LinearDistance) -> Self {
        self.distance = Some(IndexDistance::Linear(ld));
        self
    }

    /// Select features with gIndex (discriminative frequent structures).
    pub fn gindex_features(mut self, config: GindexConfig) -> Self {
        self.features = FeatureSource::GIndex(config);
        self
    }

    /// Select GraphGrep path features up to `max_len` edges.
    pub fn path_features(mut self, max_len: usize) -> Self {
        self.features = FeatureSource::Paths(max_len);
        self
    }

    /// Index every structure up to `max_edges` edges (small databases).
    pub fn exhaustive_features(mut self, max_edges: usize) -> Self {
        self.features = FeatureSource::Exhaustive(max_edges);
        self
    }

    /// Choose the per-class range-search backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Override search-time configuration (λ, ε, partition algorithm).
    pub fn search_config(mut self, config: PisConfig) -> Self {
        self.search_config = config;
        self
    }

    /// Override index build options.
    pub fn index_config(mut self, config: IndexConfig) -> Self {
        self.index_config = config;
        self
    }

    /// Pending entries a class may accumulate before its LSM buffer is
    /// merged into the frozen structure (0 disables auto-merge).
    pub fn merge_threshold(mut self, threshold: usize) -> Self {
        self.index_config.merge_threshold = threshold;
        self
    }

    /// Mines features, builds the fragment index and assembles the
    /// system.
    pub fn build(mut self, database: Vec<LabeledGraph>) -> PisSystem {
        let distance = self
            .distance
            .unwrap_or_else(|| IndexDistance::Mutation(MutationDistance::edge_hamming()));
        let structures: Vec<LabeledGraph> =
            database.iter().map(LabeledGraph::erase_labels).collect();
        let features: FeatureSet = match &self.features {
            FeatureSource::GIndex(cfg) => pis_mining::select_features(&structures, cfg),
            FeatureSource::Paths(len) => pis_mining::paths::path_features(&structures, *len),
            FeatureSource::Exhaustive(max) => {
                pis_mining::exhaustive::exhaustive_features(&structures, *max)
            }
        };
        // An explicit backend() call wins; otherwise whatever the
        // index_config carries (possibly also Default) stands.
        if self.backend != Backend::Default {
            self.index_config.backend = self.backend;
        }
        let index = FragmentIndex::build(&database, features, distance, &self.index_config);
        PisSystem { database, index, config: self.search_config }
    }
}

/// An assembled PIS deployment: the database, its fragment index and a
/// search configuration.
pub struct PisSystem {
    pub(crate) database: Vec<LabeledGraph>,
    pub(crate) index: FragmentIndex,
    pub(crate) config: PisConfig,
}

impl PisSystem {
    /// Starts a builder.
    pub fn builder() -> PisSystemBuilder {
        PisSystemBuilder::new()
    }

    /// The indexed database.
    pub fn database(&self) -> &[LabeledGraph] {
        &self.database
    }

    /// The underlying fragment index.
    pub fn index(&self) -> &FragmentIndex {
        &self.index
    }

    /// The search configuration.
    pub fn config(&self) -> &PisConfig {
        &self.config
    }

    /// A searcher bound to this system's index, database and
    /// configuration. Hold one (plus a `SearchScratch`) to run many
    /// queries without re-allocating the funnel's internal state.
    pub fn searcher(&self) -> PisSearcher<'_> {
        PisSearcher::new(&self.index, &self.database, self.config.clone())
    }

    /// Answers an SSSD query: all graphs within superimposed distance
    /// `sigma` of `query` (Definition 2), via Algorithm 2 plus
    /// verification.
    pub fn search(&self, query: &LabeledGraph, sigma: f64) -> SearchOutcome {
        self.searcher().search(query, sigma)
    }

    /// Runs the search with an overridden configuration.
    pub fn search_with(
        &self,
        query: &LabeledGraph,
        sigma: f64,
        config: PisConfig,
    ) -> SearchOutcome {
        PisSearcher::new(&self.index, &self.database, config).search(query, sigma)
    }

    /// [`PisSystem::search`] with the inputs validated first: rejects
    /// non-finite or negative `sigma` and queries carrying NaN/∞
    /// weights with a typed [`QueryError`] instead of propagating
    /// garbage through the funnel.
    pub fn try_search(
        &self,
        query: &LabeledGraph,
        sigma: f64,
    ) -> Result<SearchOutcome, QueryError> {
        self.searcher().try_search(query, sigma)
    }

    /// [`PisSystem::search`] under a per-call [`QueryBudget`]
    /// (deadline, node budget, cancellation). See
    /// [`SearchOutcome::completeness`] for whether the answer set is
    /// exact or truncated-but-sound.
    pub fn search_budgeted(
        &self,
        query: &LabeledGraph,
        sigma: f64,
        budget: &QueryBudget,
    ) -> SearchOutcome {
        self.searcher().search_budgeted(query, sigma, budget)
    }

    /// Finds the `k` structurally matching graphs nearest to `query`
    /// (top-k form of SSSD, via progressive radius widening).
    pub fn knn(&self, query: &LabeledGraph, k: usize) -> KnnOutcome {
        self.searcher().knn(query, k, 1.0, self.knn_max_radius(query))
    }

    /// [`PisSystem::knn`] with validated inputs (finite radii, finite
    /// query weights) reported as a typed [`QueryError`].
    pub fn try_knn(&self, query: &LabeledGraph, k: usize) -> Result<KnnOutcome, QueryError> {
        self.searcher().try_knn(query, k, 1.0, self.knn_max_radius(query))
    }

    /// [`PisSystem::knn`] under a per-call [`QueryBudget`]. On a tripped
    /// budget the outcome holds the best neighbors found so far and a
    /// `certified_radius` up to which the ranking is guaranteed.
    pub fn knn_budgeted(&self, query: &LabeledGraph, k: usize, budget: &QueryBudget) -> KnnOutcome {
        self.searcher().knn_budgeted(query, k, 1.0, self.knn_max_radius(query), budget)
    }

    /// The widest radius `knn` will ever explore for `query`: mutation
    /// distances are bounded by the per-element maxima times the query
    /// size; linear distances get a generous cap.
    fn knn_max_radius(&self, query: &LabeledGraph) -> f64 {
        let max_radius = match self.index.distance() {
            IndexDistance::Mutation(md) => {
                md.edge_scores().max_cost() * query.edge_count() as f64
                    + md.vertex_scores().max_cost() * query.vertex_count() as f64
            }
            IndexDistance::Linear(_) => f64::MAX / 4.0,
        };
        max_radius.max(1.0)
    }

    /// The structure-only baseline (Section 2).
    pub fn topo_prune(&self, query: &LabeledGraph, sigma: f64) -> BaselineOutcome {
        pis_core::topo_prune(&self.index, &self.database, query, sigma)
    }

    /// The full-scan baseline.
    pub fn naive_scan(&self, query: &LabeledGraph, sigma: f64) -> BaselineOutcome {
        let distance: &dyn pis_distance::SuperimposedDistance = match self.index.distance() {
            IndexDistance::Mutation(md) => md,
            IndexDistance::Linear(ld) => ld,
        };
        pis_core::naive_scan(&self.database, query, distance, sigma)
    }

    /// Fetches a graph by id.
    pub fn graph(&self, id: GraphId) -> &LabeledGraph {
        &self.database[id.index()]
    }

    /// Adds a graph to the live system (database + index), returning its
    /// id. The feature set is fixed at build time — mined features keep
    /// indexing new arrivals, which preserves correctness (features only
    /// ever *filter*); re-mine and rebuild periodically if the data
    /// distribution drifts.
    pub fn insert_graph(&mut self, graph: LabeledGraph) -> GraphId {
        let gid = self.index.insert_graph(&graph);
        self.database.push(graph);
        debug_assert_eq!(self.database.len(), self.index.graph_count());
        gid
    }

    /// [`PisSystem::insert_graph`] through the index's LSM pending
    /// buffers: O(entries added) per insert instead of a per-class
    /// arena rebuild, with bit-identical query answers. Buffers merge
    /// automatically at [`IndexConfig::merge_threshold`], or on
    /// [`PisSystem::compact`].
    pub fn insert_graph_pending(&mut self, graph: LabeledGraph) -> GraphId {
        let gid = self.index.insert_graph_pending(&graph);
        self.database.push(graph);
        debug_assert_eq!(self.database.len(), self.index.graph_count());
        gid
    }

    /// Merges every LSM pending buffer into its frozen structure and
    /// re-freezes any stale R-tree.
    pub fn compact(&mut self) {
        self.index.compact();
    }

    /// Persists the whole system (database + index) into a directory:
    /// `database.lg` (the text format of `pis_graph::io`) and
    /// `index.pis` (the fragment-index format of `pis_index::persist`).
    /// Both files rotate crash-safely (temp + fsync + rename), so a
    /// kill mid-save leaves the previous save intact.
    pub fn save_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        pis_index::codec::atomic_write(
            &dir.join("database.lg"),
            pis_graph::io::write_database(&self.database).as_bytes(),
        )?;
        let mut buf = Vec::new();
        pis_index::save_index(&self.index, &mut buf)?;
        pis_index::codec::atomic_write(&dir.join("index.pis"), &buf)
    }

    /// Assembles a system from a database and an index built over it
    /// (for example, loaded separately from disk).
    pub fn from_parts(
        database: Vec<LabeledGraph>,
        index: FragmentIndex,
        config: PisConfig,
    ) -> std::io::Result<PisSystem> {
        if database.len() != index.graph_count() {
            return Err(std::io::Error::other(format!(
                "database holds {} graphs but the index was built over {}",
                database.len(),
                index.graph_count()
            )));
        }
        Ok(PisSystem { database, index, config })
    }

    /// Restores a system saved with [`PisSystem::save_to`]. The index
    /// answers queries identically to the saved one (bit-exact entry
    /// round trip).
    pub fn load_from(dir: &std::path::Path, config: PisConfig) -> std::io::Result<PisSystem> {
        let text = std::fs::read_to_string(dir.join("database.lg"))?;
        let database = pis_graph::io::parse_database(&text).map_err(std::io::Error::other)?;
        let file = std::fs::File::open(dir.join("index.pis"))?;
        let index =
            pis_index::load_index(std::io::BufReader::new(file)).map_err(std::io::Error::other)?;
        if database.len() != index.graph_count() {
            return Err(std::io::Error::other(format!(
                "database holds {} graphs but the index was built over {}",
                database.len(),
                index.graph_count()
            )));
        }
        Ok(PisSystem { database, index, config })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pis_graph::{EdgeAttr, GraphBuilder, Label, VertexAttr};

    fn tiny_db() -> Vec<LabeledGraph> {
        (0..3u32)
            .map(|i| {
                let mut b = GraphBuilder::new();
                let vs = b.add_vertices(4, VertexAttr::labeled(Label(0)));
                for k in 0..4 {
                    let label = Label(if k == 0 { i } else { 0 });
                    b.add_edge(vs[k], vs[(k + 1) % 4], EdgeAttr::labeled(label)).unwrap();
                }
                b.build()
            })
            .collect()
    }

    #[test]
    fn builder_defaults_are_the_papers() {
        let system = PisSystem::builder().exhaustive_features(3).build(tiny_db());
        assert!(system.index().distance().is_mutation());
        assert_eq!(system.database().len(), 3);
        assert_eq!(system.config().lambda, 1.0);
    }

    #[test]
    fn explicit_backend_wins_over_index_config() {
        let db = tiny_db();
        let via_backend = PisSystem::builder()
            .exhaustive_features(2)
            .index_config(IndexConfig { backend: Backend::Trie, ..IndexConfig::default() })
            .backend(Backend::VpTree)
            .build(db.clone());
        // Both answer identically regardless of backend.
        let q = db[0].clone();
        let trie_system = PisSystem::builder()
            .exhaustive_features(2)
            .index_config(IndexConfig { backend: Backend::Trie, ..IndexConfig::default() })
            .build(db);
        assert_eq!(via_backend.search(&q, 1.0).answers, trie_system.search(&q, 1.0).answers);
    }

    #[test]
    fn graph_accessor_round_trips() {
        let db = tiny_db();
        let system = PisSystem::builder().exhaustive_features(2).build(db.clone());
        for (i, g) in db.iter().enumerate() {
            assert_eq!(system.graph(GraphId(i as u32)), g);
        }
    }

    #[test]
    fn facade_budgeted_and_validated_entry_points() {
        let db = tiny_db();
        let system = PisSystem::builder().exhaustive_features(3).build(db.clone());
        let q = db[0].clone();

        // Validation rejects bad sigma; a valid call matches `search`.
        assert!(matches!(system.try_search(&q, f64::NAN), Err(QueryError::InvalidSigma(_))));
        let exact = system.search(&q, 1.0);
        let tried = system.try_search(&q, 1.0).expect("valid query");
        assert_eq!(tried.answers, exact.answers);
        assert!(tried.completeness.is_exact());

        // An unlimited per-call budget reproduces the exact outcome; an
        // exhausted one truncates soundly (answers ⊆ exact).
        let unlimited = system.search_budgeted(&q, 1.0, &QueryBudget::unlimited());
        assert_eq!(unlimited.answers, exact.answers);
        assert!(unlimited.completeness.is_exact());
        let starved = system.search_budgeted(
            &q,
            1.0,
            &QueryBudget { node_limit: Some(1), ..QueryBudget::default() },
        );
        assert!(!starved.completeness.is_exact());
        assert!(starved.answers.iter().all(|g| exact.answers.contains(g)));

        // kNN mirrors the same trio.
        let knn = system.knn(&q, 2);
        let tried = system.try_knn(&q, 2).expect("valid query");
        assert_eq!(tried.neighbors, knn.neighbors);
        let starved = system.knn_budgeted(
            &q,
            2,
            &QueryBudget { node_limit: Some(1), ..QueryBudget::default() },
        );
        assert!(starved.certified_radius <= knn.radius);
    }

    #[test]
    fn feature_sources_build_nonempty_indexes() {
        for source in [
            FeatureSource::Exhaustive(2),
            FeatureSource::Paths(2),
            FeatureSource::GIndex(GindexConfig {
                max_edges: 2,
                min_support_fraction: 0.3,
                ..GindexConfig::default()
            }),
        ] {
            let mut builder = PisSystem::builder();
            builder.features = source;
            let system = builder.build(tiny_db());
            assert!(!system.index().features().is_empty());
        }
    }
}
