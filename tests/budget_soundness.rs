//! Property tests of budget-governed search (DESIGN.md §6.9): whatever
//! the budget, truncation must degrade *gracefully* — verified answers
//! stay correct, nothing true is silently dropped, and an unlimited
//! budget reproduces the exact search bit for bit.

mod common;

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use common::{connected_graph, graph_database};
use pis::distance::oracle::sssd_brute;
use pis::prelude::*;
use proptest::prelude::*;

/// A budget covering every limit axis: tight node budgets (trip in any
/// phase), an already-elapsed deadline, a pre-set cancel token, and a
/// loose node budget that usually never trips.
fn budget_strategy() -> impl Strategy<Value = QueryBudget> {
    (0u8..4, 1u64..300).prop_map(|(kind, n)| match kind {
        0 => QueryBudget { node_limit: Some(n), ..QueryBudget::default() },
        1 => QueryBudget { time_limit: Some(Duration::ZERO), ..QueryBudget::default() },
        2 => {
            QueryBudget { cancel: Some(Arc::new(AtomicBool::new(true))), ..QueryBudget::default() }
        }
        _ => QueryBudget { node_limit: Some(n * 1_000), ..QueryBudget::default() },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Soundness under any budget: `answers` ⊆ exact and
    /// exact ⊆ `answers` ∪ `possible` — a truncated search may leave
    /// graphs undecided but never invents or silently drops an answer.
    #[test]
    fn truncated_search_is_sound(
        db in graph_database(8, 6, 3),
        query in connected_graph(5, 2, 3),
        sigma in 0.0f64..4.0,
        budget in budget_strategy(),
    ) {
        let md = MutationDistance::edge_hamming();
        let exact = sssd_brute(&db, &query, &md, sigma);
        let system = PisSystem::builder()
            .mutation_distance(md)
            .exhaustive_features(3)
            .build(db);
        let outcome = system.search_budgeted(&query, sigma, &budget);
        for a in &outcome.answers {
            prop_assert!(
                exact.contains(&a.index()),
                "budgeted search fabricated answer {a} (exact = {exact:?})"
            );
        }
        for e in &exact {
            let covered = outcome.answers.iter().any(|g| g.index() == *e)
                || outcome.possible.iter().any(|g| g.index() == *e);
            prop_assert!(
                covered,
                "true answer {e} dropped: neither verified nor in `possible` \
                 (completeness {:?})",
                outcome.completeness
            );
        }
        if outcome.completeness.is_exact() {
            let got: Vec<usize> = outcome.answers.iter().map(|g| g.index()).collect();
            prop_assert_eq!(got, exact, "an untripped budget must be exact");
            prop_assert!(outcome.possible.is_empty());
        }
    }

    /// An infinite budget is not merely equivalent — it is bit-identical
    /// to the unbudgeted search: same answers, same f64 distance bits,
    /// same funnel statistics, `Completeness::Exact`.
    #[test]
    fn infinite_budget_is_bit_identical(
        db in graph_database(8, 6, 3),
        query in connected_graph(5, 2, 3),
        sigma in 0.0f64..4.0,
    ) {
        let system = PisSystem::builder().exhaustive_features(3).build(db);
        let plain = system.search(&query, sigma);
        let budgeted = system.search_budgeted(&query, sigma, &QueryBudget::unlimited());
        prop_assert!(budgeted.completeness.is_exact());
        prop_assert!(budgeted.possible.is_empty());
        prop_assert_eq!(&plain.answers, &budgeted.answers);
        prop_assert_eq!(&plain.candidates, &budgeted.candidates);
        prop_assert_eq!(&plain.stats, &budgeted.stats);
        let plain_bits: Vec<u64> = plain.answer_distances.iter().map(|d| d.to_bits()).collect();
        let budgeted_bits: Vec<u64> =
            budgeted.answer_distances.iter().map(|d| d.to_bits()).collect();
        prop_assert_eq!(plain_bits, budgeted_bits);
    }

    /// A scratch that lived through an aborted/truncated query is
    /// indistinguishable from a fresh one: the next (unbudgeted) search
    /// through it reproduces the fresh-scratch outcome bit for bit.
    #[test]
    fn scratch_reuse_after_truncation_is_byte_identical(
        db in graph_database(8, 6, 3),
        query in connected_graph(5, 2, 3),
        sigma in 0.0f64..4.0,
        budget in budget_strategy(),
    ) {
        let system = PisSystem::builder().exhaustive_features(3).build(db);
        let searcher = system.searcher();
        let mut reused = SearchScratch::new();
        // Possibly-truncated query through the scratch, then a clean one.
        let _ = searcher.search_budgeted_with_scratch(&query, sigma, &budget, &mut reused);
        let after = searcher.search_with_scratch(&query, sigma, &mut reused);
        let fresh = searcher.search_with_scratch(&query, sigma, &mut SearchScratch::new());
        prop_assert_eq!(&after.answers, &fresh.answers);
        prop_assert_eq!(&after.candidates, &fresh.candidates);
        prop_assert_eq!(&after.possible, &fresh.possible);
        prop_assert_eq!(&after.stats, &fresh.stats);
        let after_bits: Vec<u64> = after.answer_distances.iter().map(|d| d.to_bits()).collect();
        let fresh_bits: Vec<u64> = fresh.answer_distances.iter().map(|d| d.to_bits()).collect();
        prop_assert_eq!(after_bits, fresh_bits);
        prop_assert!(after.completeness.is_exact());
    }

    /// Budgeted kNN: whatever the budget, reported neighbors carry true
    /// distances and the certified radius never exceeds the explored
    /// one; an untripped run certifies its final radius.
    #[test]
    fn budgeted_knn_is_sound(
        db in graph_database(6, 5, 3),
        query in connected_graph(4, 1, 3),
        k in 1usize..4,
        budget in budget_strategy(),
    ) {
        use pis::distance::oracle::min_superimposed_distance_brute;
        let md = MutationDistance::edge_hamming();
        let system = PisSystem::builder()
            .mutation_distance(md.clone())
            .exhaustive_features(3)
            .build(db.clone());
        let outcome = system.knn_budgeted(&query, k, &budget);
        prop_assert!(outcome.certified_radius <= outcome.radius);
        for n in &outcome.neighbors {
            let brute = min_superimposed_distance_brute(&query, &db[n.graph.index()], &md);
            prop_assert_eq!(brute, Some(n.distance), "neighbor distance must be exact");
        }
        if outcome.completeness.is_exact() {
            prop_assert_eq!(outcome.certified_radius, outcome.radius);
        }
    }
}
