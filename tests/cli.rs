//! Integration tests of the `pis` CLI binary: the full
//! generate → build → sample → search/knn/stats/dot pipeline through
//! the public command-line surface.

use std::path::PathBuf;
use std::process::Command;

fn pis() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pis"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pis-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary must run");
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn full_pipeline() {
    let dir = tmp_dir("pipeline");
    let db = dir.join("db.lg");
    let index = dir.join("index.pis");
    let queries = dir.join("queries.lg");

    // generate
    let out = run_ok(pis().args([
        "generate",
        "--count",
        "60",
        "--seed",
        "5",
        "--out",
        db.to_str().unwrap(),
    ]));
    assert!(out.contains("wrote 60 molecules"));

    // stats
    let out = run_ok(pis().args(["stats", db.to_str().unwrap()]));
    assert!(out.contains("graphs: 60"));
    assert!(out.contains("atoms:"));

    // build
    let out = run_ok(pis().args([
        "build",
        db.to_str().unwrap(),
        "--out",
        index.to_str().unwrap(),
        "--max-edges",
        "4",
        "--min-support",
        "0.05",
    ]));
    assert!(out.contains("indexed 60 graphs"));

    // sample queries
    let out = run_ok(pis().args([
        "sample",
        db.to_str().unwrap(),
        "--edges",
        "8",
        "--count",
        "2",
        "--seed",
        "3",
        "--out",
        queries.to_str().unwrap(),
    ]));
    assert!(out.contains("sampled 2 Q8 queries"));

    // search (PIS)
    let out = run_ok(pis().args([
        "search",
        db.to_str().unwrap(),
        "--index",
        index.to_str().unwrap(),
        "--query",
        queries.to_str().unwrap(),
        "--sigma",
        "1",
    ]));
    assert!(out.contains("query 0"));
    assert!(out.contains("answers"));

    // search with explain plan
    let explained = run_ok(pis().args([
        "search",
        db.to_str().unwrap(),
        "--index",
        index.to_str().unwrap(),
        "--query",
        queries.to_str().unwrap(),
        "--sigma",
        "1",
        "--explain",
    ]));
    assert!(explained.contains("candidate funnel"));
    assert!(explained.contains("partition"));

    // search (baselines agree on answer counts)
    let topo = run_ok(pis().args([
        "search",
        db.to_str().unwrap(),
        "--index",
        index.to_str().unwrap(),
        "--query",
        queries.to_str().unwrap(),
        "--sigma",
        "1",
        "--baseline",
        "topo",
    ]));
    let pis_counts: Vec<&str> = out.lines().filter(|l| l.contains("answers from")).collect();
    let topo_counts: Vec<&str> = topo.lines().filter(|l| l.contains("answers from")).collect();
    assert_eq!(pis_counts.len(), topo_counts.len());
    for (p, t) in pis_counts.iter().zip(&topo_counts) {
        let answers =
            |s: &str| s.split("): ").nth(1).and_then(|x| x.split(' ').next().map(String::from));
        assert_eq!(answers(p), answers(t), "PIS and topoPrune answer counts differ");
    }

    // knn
    let out = run_ok(pis().args([
        "knn",
        db.to_str().unwrap(),
        "--index",
        index.to_str().unwrap(),
        "--query",
        queries.to_str().unwrap(),
        "--k",
        "3",
    ]));
    assert!(out.contains("neighbors"));

    // dot
    let out = run_ok(pis().args(["dot", db.to_str().unwrap(), "--graph", "0"]));
    assert!(out.starts_with("graph g0 {"));
    assert!(out.contains(" -- "));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn import_sdf() {
    let dir = tmp_dir("import");
    let sdf = dir.join("mol.sdf");
    let db = dir.join("db.lg");
    std::fs::write(
        &sdf,
        "m\n\n\n  3  2  0  0  0  0  0  0  0  0999 V2000\n\
         0 0 0 C 0\n0 0 0 C 0\n0 0 0 O 0\n  1  2  1  0\n  2  3  2  0\nM  END\n$$$$\n",
    )
    .unwrap();
    let out = run_ok(pis().args(["import", sdf.to_str().unwrap(), "--out", db.to_str().unwrap()]));
    assert!(out.contains("imported 1 molecules"));
    let out = run_ok(pis().args(["stats", db.to_str().unwrap()]));
    assert!(out.contains("graphs: 1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported() {
    let out = pis().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = pis().args(["stats", "/nonexistent/db.lg"]).output().expect("binary runs");
    assert!(!out.status.success());

    let out = pis().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn help_prints_usage() {
    let out = run_ok(pis().args(["help"]));
    assert!(out.contains("usage:"));
    assert!(out.contains("pis build"));
}
