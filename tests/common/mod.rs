//! Shared helpers and proptest strategies for the integration tests.
//!
// Each test binary compiles this module independently; helpers unused
// by one binary are still used by others.
#![allow(dead_code)]

use pis::prelude::*;
use proptest::prelude::*;

/// A proptest strategy for small connected labeled graphs: a random
/// spanning tree plus a few extra edges, with labels drawn from a small
/// vocabulary (so collisions — the hard case for canonical forms and
/// distances — are common).
pub fn connected_graph(
    max_vertices: usize,
    max_extra_edges: usize,
    label_count: u32,
) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_vertices).prop_flat_map(move |n| {
        let tree_parents = proptest::collection::vec(0..n, n - 1);
        let extra = proptest::collection::vec((0..n, 0..n), 0..=max_extra_edges);
        let vlabels = proptest::collection::vec(0..label_count, n);
        let elabels = proptest::collection::vec(0..label_count, n - 1 + max_extra_edges);
        (tree_parents, extra, vlabels, elabels).prop_map(move |(parents, extra, vl, el)| {
            let mut b = GraphBuilder::new();
            let vs: Vec<VertexId> =
                (0..n).map(|i| b.add_vertex(VertexAttr::labeled(Label(vl[i])))).collect();
            let mut next_label = 0usize;
            // Spanning tree: vertex i+1 attaches to parents[i] % (i+1),
            // guaranteeing connectivity.
            for i in 1..n {
                let p = parents[i - 1] % i;
                b.add_edge(vs[p], vs[i], EdgeAttr::labeled(Label(el[next_label])))
                    .expect("tree edges are fresh");
                next_label += 1;
            }
            for &(u, v) in &extra {
                if u != v {
                    // Duplicate edges are rejected; ignore those.
                    let _ = b.add_edge(vs[u], vs[v], EdgeAttr::labeled(Label(el[next_label])));
                }
                next_label += 1;
            }
            b.build()
        })
    })
}

/// A small database of connected labeled graphs.
pub fn graph_database(
    max_graphs: usize,
    max_vertices: usize,
    label_count: u32,
) -> impl Strategy<Value = Vec<LabeledGraph>> {
    proptest::collection::vec(connected_graph(max_vertices, 2, label_count), 1..=max_graphs)
}

/// Builds a labeled ring with per-edge labels; deterministic helper for
/// example-style tests.
pub fn ring(edge_labels: &[u32]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let n = edge_labels.len();
    let vs = b.add_vertices(n, VertexAttr::labeled(Label(0)));
    for (i, &l) in edge_labels.iter().enumerate() {
        b.add_edge(vs[i], vs[(i + 1) % n], EdgeAttr::labeled(Label(l))).expect("ring is simple");
    }
    b.build()
}
