//! Crash-recovery tier (runs only with `--features failpoints`).
//!
//! Deterministic kill-points inside the durability layer — mid WAL
//! append, mid fsync, mid snapshot write, before the snapshot rename,
//! between snapshot rotation and WAL truncation — prove the contract:
//! every *acknowledged* insert is queryable after reopen, an
//! unacknowledged one is cleanly absent, a half-compacted store
//! recovers idempotently, and corruption of either file is a typed
//! error, never a panic.
#![cfg(feature = "failpoints")]

mod common;

use std::path::PathBuf;
use std::sync::Mutex;

use common::ring;
use pis::index::PersistError;
use pis::prelude::*;

/// The failpoint registry is process-global: every test serializes
/// itself behind this lock and disarms on entry and exit.
static SERIAL: Mutex<()> = Mutex::new(());

/// A per-test scratch directory, recreated on entry, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("pis-crash-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn db() -> Vec<LabeledGraph> {
    vec![ring(&[1, 1, 1, 1]), ring(&[1, 1, 2, 2]), ring(&[2, 2, 2, 2])]
}

fn incoming() -> Vec<LabeledGraph> {
    vec![ring(&[1, 2, 1, 2]), ring(&[2, 1, 1, 1]), ring(&[3, 1, 2, 1])]
}

fn base_system() -> PisSystem {
    PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .exhaustive_features(3)
        .build(db())
}

/// Asserts `graph` (inserted as `gid`) is an answer to its own σ=0
/// query — the "acknowledged ⇒ queryable" half of the contract.
fn assert_queryable(store: &DurableSystem, graph: &LabeledGraph, gid: GraphId, context: &str) {
    let hits = store.system().search(graph, 0.0);
    assert!(hits.answers.contains(&gid), "{context}: acknowledged graph {gid} not queryable");
}

#[test]
fn clean_lifecycle_acknowledged_inserts_survive_reopen() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let dir = TempDir::new("clean");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    let mut acked = Vec::new();
    for g in incoming() {
        let gid = store.insert_graph(g.clone()).expect("no failpoints armed");
        acked.push((g, gid));
    }
    drop(store);

    let store = DurableSystem::open(&dir.0, PisConfig::default()).unwrap();
    assert_eq!(store.report().wal_records_replayed, acked.len());
    assert_eq!(store.report().wal_records_skipped, 0);
    assert_eq!(store.report().torn_tail_bytes, 0);
    assert_eq!(store.system().database().len(), db().len() + acked.len());
    for (g, gid) in &acked {
        assert_queryable(&store, g, *gid, "clean reopen");
    }
}

#[test]
fn compaction_empties_the_wal_and_keeps_every_answer() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let dir = TempDir::new("compact");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    let mut acked = Vec::new();
    for g in incoming() {
        let gid = store.insert_graph(g.clone()).unwrap();
        acked.push((g, gid));
    }
    store.compact().unwrap();
    assert_eq!(store.pending_entries(), 0);
    assert_eq!(store.wal_len(), 8, "a compacted WAL holds only its magic header");
    drop(store);

    let store = DurableSystem::open(&dir.0, PisConfig::default()).unwrap();
    assert!(store.report().clean(), "nothing to replay after compaction: {:?}", store.report());
    for (g, gid) in &acked {
        assert_queryable(&store, g, *gid, "post-compaction reopen");
    }
}

/// A kill mid WAL append: the insert errors (never acknowledged), the
/// torn half-frame is truncated on reopen, and the store keeps working
/// — including on the *same* handle, which self-heals its tail.
#[test]
fn crash_mid_wal_append_loses_only_the_unacknowledged_insert() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let dir = TempDir::new("wal-append");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    let first = store.insert_graph(incoming()[0].clone()).unwrap();

    failpoints::arm("wal-append", 1);
    let torn = store.insert_graph(incoming()[1].clone());
    failpoints::disarm_all();
    assert!(torn.is_err(), "an insert killed mid-append must not be acknowledged");
    assert_eq!(store.system().database().len(), db().len() + 1, "failed insert not applied");

    // The same handle recovers: the next append truncates the torn tail.
    let healed = store.insert_graph(incoming()[2].clone()).unwrap();
    drop(store);

    let store = DurableSystem::open(&dir.0, PisConfig::default()).unwrap();
    assert_eq!(store.report().wal_records_replayed, 2);
    assert_eq!(store.report().torn_tail_bytes, 0, "the healed append overwrote the torn bytes");
    assert_queryable(&store, &incoming()[0], first, "survivor");
    assert_queryable(&store, &incoming()[2], healed, "post-heal insert");
    assert_eq!(store.system().database().len(), db().len() + 2);
}

/// A kill where the append's bytes reached the file but the fsync never
/// completed (the kernel may drop them): unacknowledged, cleanly absent.
#[test]
fn crash_in_wal_fsync_is_unacknowledged_and_absent() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let dir = TempDir::new("wal-fsync");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    let first = store.insert_graph(incoming()[0].clone()).unwrap();

    failpoints::arm("wal-fsync", 1);
    let lost = store.insert_graph(incoming()[1].clone());
    failpoints::disarm_all();
    assert!(lost.is_err());
    drop(store);

    let store = DurableSystem::open(&dir.0, PisConfig::default()).unwrap();
    assert_eq!(store.report().wal_records_replayed, 1, "only the acknowledged insert replays");
    assert_eq!(store.report().torn_tail_bytes, 0, "unsynced bytes never hit the durable file");
    assert_queryable(&store, &incoming()[0], first, "acknowledged survivor");
    assert_eq!(store.system().database().len(), db().len() + 1);
}

/// Kills inside snapshot rotation — mid temp-file write, and after the
/// temp file is complete but before the rename — must both leave the
/// previous snapshot + WAL pair fully intact.
#[test]
fn crash_during_snapshot_rotation_keeps_the_old_store() {
    let _guard = SERIAL.lock().unwrap();
    for site in ["snapshot-write", "snapshot-rename"] {
        failpoints::disarm_all();
        let dir = TempDir::new(site);
        let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
        let mut acked = Vec::new();
        for g in incoming() {
            acked.push((g.clone(), store.insert_graph(g).unwrap()));
        }

        failpoints::arm(site, 1);
        assert!(store.compact().is_err(), "{site}: compaction must surface the crash");
        failpoints::disarm_all();
        drop(store);

        let store = DurableSystem::open(&dir.0, PisConfig::default()).unwrap();
        assert_eq!(
            store.report().wal_records_replayed,
            acked.len(),
            "{site}: the old snapshot still needs every WAL record"
        );
        for (g, gid) in &acked {
            assert_queryable(&store, g, *gid, site);
        }
    }
}

/// A kill *between* snapshot rotation and WAL truncation: the stale WAL
/// records are already covered by the new snapshot and replay
/// idempotently (skipped, not duplicated).
#[test]
fn crash_between_snapshot_and_wal_truncation_replays_idempotently() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let dir = TempDir::new("compact-truncate");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    let mut acked = Vec::new();
    for g in incoming() {
        acked.push((g.clone(), store.insert_graph(g).unwrap()));
    }

    failpoints::arm("compact-truncate", 1);
    assert!(store.compact().is_err());
    failpoints::disarm_all();
    drop(store);

    let store = DurableSystem::open(&dir.0, PisConfig::default()).unwrap();
    assert_eq!(store.report().wal_records_skipped, acked.len(), "stale records must be skipped");
    assert_eq!(store.report().wal_records_replayed, 0);
    assert_eq!(store.system().database().len(), db().len() + acked.len(), "no duplicates");
    for (g, gid) in &acked {
        assert_queryable(&store, g, *gid, "idempotent replay");
    }
}

/// A panic at the append failpoint (modeling a crashed thread rather
/// than a killed process) leaves the on-disk pair reopenable.
#[test]
fn append_panic_leaves_the_store_reopenable() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let dir = TempDir::new("append-panic");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    let first = store.insert_graph(incoming()[0].clone()).unwrap();

    failpoints::arm_panic("wal-append", 1);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = store.insert_graph(incoming()[1].clone());
    }));
    failpoints::disarm_all();
    assert!(panicked.is_err(), "the armed panic must surface");
    drop(store);

    let store = DurableSystem::open(&dir.0, PisConfig::default()).unwrap();
    assert_eq!(store.report().wal_records_replayed, 1);
    assert_queryable(&store, &incoming()[0], first, "after append panic");
}

/// Bit rot in either on-disk file is a typed [`PersistError::Corrupt`]
/// on open — never a panic, never silent acceptance.
#[test]
fn corruption_of_either_file_is_a_typed_error() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let dir = TempDir::new("bitrot");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    for g in incoming() {
        store.insert_graph(g).unwrap();
    }
    drop(store);

    for file in ["wal.log", "snapshot.pis"] {
        let path = dir.0.join(file);
        let pristine = std::fs::read(&path).unwrap();
        // Flip a byte inside the first record / first section — well
        // past the header so the magic stays valid.
        let mut bad = pristine.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        match DurableSystem::open(&dir.0, PisConfig::default()) {
            Err(PersistError::Corrupt { .. }) => {}
            Err(other) => panic!("{file}: expected Corrupt, got {other}"),
            Ok(_) => panic!("{file}: corruption accepted silently"),
        }
        std::fs::write(&path, &pristine).unwrap();
    }
    // Restored byte-for-byte, the store opens again.
    assert!(DurableSystem::open(&dir.0, PisConfig::default()).is_ok());
}
