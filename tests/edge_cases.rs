//! Edge cases and failure-mode tests for the full system: degenerate
//! databases, degenerate queries, and inputs at the boundaries of the
//! paper's definitions.

mod common;

use common::ring;
use pis::distance::oracle::sssd_brute;
use pis::prelude::*;

#[test]
fn empty_database_yields_empty_answers() {
    let system = PisSystem::builder().exhaustive_features(3).build(Vec::new());
    let q = ring(&[1, 1, 1]);
    let outcome = system.search(&q, 5.0);
    assert!(outcome.answers.is_empty());
    assert!(outcome.candidates.is_empty());
    assert_eq!(system.knn(&q, 3).neighbors.len(), 0);
}

#[test]
fn query_larger_than_every_graph() {
    let db = vec![ring(&[1, 1, 1]), ring(&[1, 2, 1, 2])];
    let system = PisSystem::builder().exhaustive_features(3).build(db);
    let q = ring(&[1; 12]);
    let outcome = system.search(&q, 100.0);
    assert!(outcome.answers.is_empty());
}

#[test]
fn single_edge_query_matches_all_containing_graphs() {
    let db = vec![ring(&[1, 1, 1]), ring(&[2, 2, 2]), ring(&[1, 2, 3])];
    let system = PisSystem::builder().exhaustive_features(2).build(db.clone());
    let mut b = GraphBuilder::new();
    let u = b.add_vertex(VertexAttr::labeled(Label(0)));
    let v = b.add_vertex(VertexAttr::labeled(Label(0)));
    b.add_edge(u, v, EdgeAttr::labeled(Label(1))).unwrap();
    let q = b.build();
    let md = MutationDistance::edge_hamming();
    for sigma in [0.0, 1.0] {
        let got: Vec<usize> = system.search(&q, sigma).answers.iter().map(|g| g.index()).collect();
        assert_eq!(got, sssd_brute(&db, &q, &md, sigma), "sigma {sigma}");
    }
}

#[test]
fn single_vertex_query_matches_everything() {
    let db = vec![ring(&[1, 1, 1]), ring(&[2, 2, 2, 2])];
    let system = PisSystem::builder().exhaustive_features(2).build(db.clone());
    let mut b = GraphBuilder::new();
    b.add_vertex(VertexAttr::labeled(Label(0)));
    let q = b.build();
    // Edge-Hamming scores no vertex costs: every graph matches at 0.
    let outcome = system.search(&q, 0.0);
    assert_eq!(outcome.answers.len(), db.len());
}

#[test]
fn disconnected_query_agrees_with_oracle() {
    // Two disjoint edges as a query: the paper's machinery never needs
    // connectivity of Q, only of fragments.
    let db = vec![
        ring(&[1, 1, 1, 1]), // can host both edges
        {
            // A single edge: cannot host two disjoint edges.
            let mut b = GraphBuilder::new();
            let u = b.add_vertex(VertexAttr::labeled(Label(0)));
            let v = b.add_vertex(VertexAttr::labeled(Label(0)));
            b.add_edge(u, v, EdgeAttr::labeled(Label(1))).unwrap();
            b.build()
        },
        ring(&[2, 2, 2]),
    ];
    let mut b = GraphBuilder::new();
    let vs = b.add_vertices(4, VertexAttr::labeled(Label(0)));
    b.add_edge(vs[0], vs[1], EdgeAttr::labeled(Label(1))).unwrap();
    b.add_edge(vs[2], vs[3], EdgeAttr::labeled(Label(1))).unwrap();
    let q = b.build();
    assert!(!q.is_connected());

    let system = PisSystem::builder().exhaustive_features(2).build(db.clone());
    let md = MutationDistance::edge_hamming();
    for sigma in [0.0, 1.0, 2.0] {
        let got: Vec<usize> = system.search(&q, sigma).answers.iter().map(|g| g.index()).collect();
        assert_eq!(got, sssd_brute(&db, &q, &md, sigma), "sigma {sigma}");
    }
}

#[test]
fn duplicate_graphs_all_reported() {
    let g = ring(&[1, 2, 1, 2]);
    let db = vec![g.clone(), g.clone(), g.clone()];
    let system = PisSystem::builder().exhaustive_features(3).build(db);
    let outcome = system.search(&g, 0.0);
    assert_eq!(outcome.answers.len(), 3);
}

#[test]
fn zero_sigma_requires_exact_labels() {
    let db = vec![ring(&[1, 1, 2]), ring(&[1, 2, 1])]; // same multiset, rotations
    let system = PisSystem::builder().exhaustive_features(3).build(db);
    // Rotations are superpositions: both match exactly.
    let outcome = system.search(&ring(&[2, 1, 1]), 0.0);
    assert_eq!(outcome.answers.len(), 2);
}

#[test]
fn huge_sigma_degrades_to_structure_search() {
    let db = vec![ring(&[1, 1, 1, 1]), ring(&[2, 2, 2, 2]), ring(&[3, 3, 3])];
    let system = PisSystem::builder().exhaustive_features(3).build(db);
    let outcome = system.search(&ring(&[9, 9, 9, 9]), 1e9);
    // Any 4-ring matches structurally; the 3-ring cannot.
    let got: Vec<usize> = outcome.answers.iter().map(|g| g.index()).collect();
    assert_eq!(got, vec![0, 1]);
}

#[test]
fn graphs_with_isolated_vertices_are_searchable() {
    let mut b = GraphBuilder::new();
    let vs = b.add_vertices(4, VertexAttr::labeled(Label(0)));
    b.add_edge(vs[0], vs[1], EdgeAttr::labeled(Label(1))).unwrap();
    // vs[2], vs[3] stay isolated.
    let g = b.build();
    let db = vec![g, ring(&[1, 1, 1])];
    let system = PisSystem::builder().exhaustive_features(2).build(db.clone());
    let mut qb = GraphBuilder::new();
    let u = qb.add_vertex(VertexAttr::labeled(Label(0)));
    let v = qb.add_vertex(VertexAttr::labeled(Label(0)));
    qb.add_edge(u, v, EdgeAttr::labeled(Label(1))).unwrap();
    let q = qb.build();
    let md = MutationDistance::edge_hamming();
    let got: Vec<usize> = system.search(&q, 0.0).answers.iter().map(|g| g.index()).collect();
    assert_eq!(got, sssd_brute(&db, &q, &md, 0.0));
}

#[test]
fn sigma_boundary_is_inclusive() {
    // Definition 2 uses d(Q, Gi) <= sigma.
    let db = vec![ring(&[1, 1, 2])];
    let system = PisSystem::builder().exhaustive_features(3).build(db);
    let q = ring(&[1, 1, 1]);
    assert_eq!(system.search(&q, 1.0).answers.len(), 1, "distance exactly sigma must match");
    assert_eq!(system.search(&q, 0.999).answers.len(), 0);
}

#[test]
fn epsilon_one_drops_every_fragment_but_stays_correct() {
    // With epsilon beyond every selectivity the partition is empty: PIS
    // degrades to intersection pruning + verification, never wrong.
    let db = vec![ring(&[1, 1, 1, 1]), ring(&[1, 1, 2, 2]), ring(&[2, 2, 2, 2])];
    let system = PisSystem::builder()
        .exhaustive_features(3)
        .search_config(PisConfig { epsilon: f64::MAX, ..PisConfig::default() })
        .build(db.clone());
    let q = ring(&[1, 1, 1, 1]);
    let md = MutationDistance::edge_hamming();
    for sigma in [0.0, 2.0] {
        let got: Vec<usize> = system.search(&q, sigma).answers.iter().map(|g| g.index()).collect();
        assert_eq!(got, sssd_brute(&db, &q, &md, sigma));
    }
}
