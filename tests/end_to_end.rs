//! End-to-end integration: the full PIS system against the brute-force
//! oracle on realistic synthetic molecules, across feature sources,
//! backends and distances.

mod common;

use common::ring;
use pis::datasets::{query::sample_query, sample_query_set, MoleculeConfig, MoleculeGenerator};
use pis::distance::oracle::sssd_brute;
use pis::prelude::*;

fn answers_as_usize(outcome: &SearchOutcome) -> Vec<usize> {
    outcome.answers.iter().map(|g| g.index()).collect()
}

#[test]
fn synthetic_molecules_match_oracle_md() {
    let db = MoleculeGenerator::default().database(60, 101);
    let system = PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .gindex_features(GindexConfig {
            max_edges: 5,
            min_support_fraction: 0.05,
            ..GindexConfig::default()
        })
        .build(db.clone());
    let md = MutationDistance::edge_hamming();
    let queries = sample_query_set(&db, 8, 6, 5);
    for (qi, q) in queries.iter().enumerate() {
        for sigma in [0.0, 1.0, 2.0] {
            let got = answers_as_usize(&system.search(q, sigma));
            let expected = sssd_brute(&db, q, &md, sigma);
            assert_eq!(got, expected, "query {qi} sigma {sigma}");
        }
    }
}

#[test]
fn synthetic_molecules_match_oracle_ld() {
    let generator =
        MoleculeGenerator::new(MoleculeConfig { weighted: true, ..MoleculeConfig::default() });
    let db = generator.database(40, 33);
    let system = PisSystem::builder()
        .linear_distance(LinearDistance::edges_only())
        .exhaustive_features(3)
        .build(db.clone());
    let ld = LinearDistance::edges_only();
    let queries = sample_query_set(&db, 6, 4, 9);
    for (qi, q) in queries.iter().enumerate() {
        for sigma in [0.0, 0.1, 0.5, 2.0] {
            let got = answers_as_usize(&system.search(q, sigma));
            let expected = sssd_brute(&db, q, &ld, sigma);
            assert_eq!(got, expected, "query {qi} sigma {sigma}");
        }
    }
}

#[test]
fn feature_sources_agree_on_answers() {
    let db = MoleculeGenerator::default().database(40, 7);
    let queries = sample_query_set(&db, 8, 3, 2);
    let systems = [
        PisSystem::builder().exhaustive_features(4).build(db.clone()),
        PisSystem::builder().path_features(4).build(db.clone()),
        PisSystem::builder()
            .gindex_features(GindexConfig {
                max_edges: 4,
                min_support_fraction: 0.05,
                ..GindexConfig::default()
            })
            .build(db.clone()),
    ];
    for q in &queries {
        for sigma in [0.0, 1.0, 2.0] {
            let reference = answers_as_usize(&systems[0].search(q, sigma));
            for (i, system) in systems.iter().enumerate().skip(1) {
                assert_eq!(
                    answers_as_usize(&system.search(q, sigma)),
                    reference,
                    "feature source {i} disagrees at sigma {sigma}"
                );
            }
        }
    }
}

#[test]
fn trie_and_vptree_systems_agree() {
    let db = MoleculeGenerator::default().database(30, 21);
    let queries = sample_query_set(&db, 6, 3, 4);
    let trie = PisSystem::builder().exhaustive_features(3).backend(Backend::Trie).build(db.clone());
    let vp = PisSystem::builder().exhaustive_features(3).backend(Backend::VpTree).build(db.clone());
    for q in &queries {
        for sigma in [0.0, 1.0, 3.0] {
            assert_eq!(
                answers_as_usize(&trie.search(q, sigma)),
                answers_as_usize(&vp.search(q, sigma)),
                "backends disagree at sigma {sigma}"
            );
        }
    }
}

#[test]
fn database_sampled_query_always_finds_its_source() {
    // A query cut out of graph G must return G at any sigma >= 0.
    let db = MoleculeGenerator::default().database(50, 55);
    let system = PisSystem::builder()
        .gindex_features(GindexConfig {
            max_edges: 4,
            min_support_fraction: 0.05,
            ..GindexConfig::default()
        })
        .build(db.clone());
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    let mut tested = 0;
    for (gi, g) in db.iter().enumerate() {
        if g.edge_count() < 10 {
            continue;
        }
        let Some(q) = sample_query(g, 10, &mut rng) else { continue };
        let outcome = system.search(&q, 0.0);
        assert!(
            outcome.answers.iter().any(|a| a.index() == gi),
            "graph {gi} lost its own substructure"
        );
        tested += 1;
        if tested >= 10 {
            break;
        }
    }
    assert!(tested >= 5, "too few source graphs tested");
}

#[test]
fn paper_example_1_flavor() {
    // Figure 1 + Example 1: three molecules sharing the query topology;
    // threshold "< 2" returns the two within one mutation.
    let db = vec![
        ring(&[1, 2, 1, 2, 1, 1]), // one mutation from the query
        ring(&[2, 2, 2, 2, 2, 2]), // three mutations
        ring(&[1, 2, 1, 2, 2, 2]), // one mutation
    ];
    let system = PisSystem::builder().exhaustive_features(4).build(db);
    let query = ring(&[1, 2, 1, 2, 1, 2]);
    let within_2 = system.search(&query, 2.0 - f64::EPSILON);
    assert_eq!(answers_as_usize(&within_2), vec![0, 2]);
}

#[test]
fn stats_expose_the_pruning_funnel() {
    let db = MoleculeGenerator::default().database(80, 13);
    let system = PisSystem::builder()
        .gindex_features(GindexConfig {
            max_edges: 5,
            min_support_fraction: 0.05,
            ..GindexConfig::default()
        })
        .build(db.clone());
    let q = sample_query_set(&db, 12, 1, 3).remove(0);
    let o = system.search(&q, 1.0);
    let s = &o.stats;
    assert!(s.query_fragments > 0);
    assert!(s.candidates_after_intersection <= db.len());
    assert!(s.candidates_after_partition <= s.candidates_after_intersection);
    assert!(s.candidates_after_structure <= s.candidates_after_partition);
    assert_eq!(s.verification_calls, o.candidates.len());
    assert!(o.answers.len() <= o.candidates.len());
}

#[test]
fn save_load_round_trip_preserves_answers() {
    let db = MoleculeGenerator::default().database(30, 61);
    let mut system = PisSystem::builder()
        .gindex_features(GindexConfig {
            max_edges: 4,
            min_support_fraction: 0.05,
            ..GindexConfig::default()
        })
        .build(db.clone());
    let queries = sample_query_set(&db, 8, 3, 12);

    let dir = std::env::temp_dir().join(format!("pis-system-{}", std::process::id()));
    system.save_to(&dir).expect("save must succeed");
    let loaded = PisSystem::load_from(&dir, PisConfig::default()).expect("load must succeed");
    std::fs::remove_dir_all(&dir).ok();

    for q in &queries {
        for sigma in [0.0, 1.0, 2.0] {
            assert_eq!(
                answers_as_usize(&system.search(q, sigma)),
                answers_as_usize(&loaded.search(q, sigma)),
                "loaded system diverged at sigma {sigma}"
            );
        }
    }

    // The loaded system stays fully functional: dynamic insert + k-NN.
    let extra = MoleculeGenerator::default().database(1, 77).remove(0);
    let mut loaded = loaded;
    loaded.insert_graph(extra.clone());
    system.insert_graph(extra);
    let q = &queries[0];
    assert_eq!(answers_as_usize(&system.search(q, 2.0)), answers_as_usize(&loaded.search(q, 2.0)));
    let a = system.knn(q, 3);
    let b = loaded.knn(q, 3);
    assert_eq!(a.neighbors, b.neighbors);
}

#[test]
fn knn_agrees_with_range_search_ranking() {
    let db = MoleculeGenerator::default().database(40, 31);
    let system = PisSystem::builder()
        .gindex_features(GindexConfig {
            max_edges: 4,
            min_support_fraction: 0.05,
            ..GindexConfig::default()
        })
        .build(db.clone());
    let q = sample_query_set(&db, 10, 1, 8).remove(0);
    let knn = system.knn(&q, 5);
    // Every neighbor's distance must match the range search's verified
    // distance at a radius covering it.
    let radius = knn.neighbors.last().map_or(0.0, |n| n.distance);
    let range = system.search(&q, radius);
    for n in &knn.neighbors {
        let pos = range
            .answers
            .iter()
            .position(|g| g == &n.graph)
            .expect("kNN result missing from range search");
        assert_eq!(range.answer_distances[pos], n.distance);
    }
    // Sorted by distance.
    assert!(knn.neighbors.windows(2).all(|w| w[0].distance <= w[1].distance));
}

#[test]
fn io_round_trip_preserves_search_results() {
    use pis::graph::io::{parse_database, write_database};
    let db = MoleculeGenerator::default().database(25, 99);
    let text = write_database(&db);
    let parsed = parse_database(&text).expect("serialized database must parse");
    assert_eq!(parsed, db);
    let system_a = PisSystem::builder().exhaustive_features(3).build(db.clone());
    let system_b = PisSystem::builder().exhaustive_features(3).build(parsed);
    let q = sample_query_set(&db, 6, 1, 0).remove(0);
    assert_eq!(
        answers_as_usize(&system_a.search(&q, 1.0)),
        answers_as_usize(&system_b.search(&q, 1.0))
    );
}
