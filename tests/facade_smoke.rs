//! Facade smoke test: `PisSystem`'s `search` and `knn` must agree with
//! the brute-force baselines (`pis_core::baseline` / the oracle) on a
//! deterministic toy database, end to end through the whole newly-wired
//! dependency graph (facade → core → index → mining → partition →
//! distance → graph).

mod common;

use common::ring;
use pis::distance::oracle::min_superimposed_distance_brute;
use pis::prelude::*;

/// Rings of six labeled edges: a database whose pairwise distances are
/// easy to enumerate by hand.
fn toy_db() -> Vec<LabeledGraph> {
    vec![
        ring(&[1, 2, 1, 2, 1, 2]), // the query itself
        ring(&[1, 2, 1, 2, 1, 1]), // one relabel away
        ring(&[1, 1, 1, 1, 1, 1]), // three relabels away
        ring(&[2, 2, 2, 2, 2, 2]), // three relabels away
        ring(&[3, 3, 3, 3, 3, 3]), // six relabels away
    ]
}

fn toy_system() -> PisSystem {
    PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .exhaustive_features(3)
        .build(toy_db())
}

#[test]
fn search_matches_naive_scan_at_every_sigma() {
    let system = toy_system();
    let query = ring(&[1, 2, 1, 2, 1, 2]);
    for sigma in [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 10.0] {
        let pis = system.search(&query, sigma);
        let naive = system.naive_scan(&query, sigma);
        let topo = system.topo_prune(&query, sigma);
        assert_eq!(pis.answers, naive.answers, "sigma {sigma}: PIS vs naive scan");
        assert_eq!(pis.answers, topo.answers, "sigma {sigma}: PIS vs topoPrune");
    }
    // Spot-check the hand-computed funnel: σ = 1 admits the exact match
    // and the one-relabel ring only.
    let hits = system.search(&query, 1.0);
    assert_eq!(hits.answers, vec![GraphId(0), GraphId(1)]);
    assert_eq!(hits.answer_distances, vec![0.0, 1.0]);
}

#[test]
fn knn_returns_the_brute_force_nearest() {
    let system = toy_system();
    let query = ring(&[1, 2, 1, 2, 1, 2]);
    let md = MutationDistance::edge_hamming();

    // Brute-force reference: exact distance to every database graph,
    // sorted by (distance, id) — the same order `knn` promises.
    let mut expected: Vec<(usize, f64)> = system
        .database()
        .iter()
        .enumerate()
        .filter_map(|(i, g)| min_superimposed_distance_brute(&query, g, &md).map(|d| (i, d)))
        .collect();
    expected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));

    for k in 1..=expected.len() + 1 {
        let got = system.knn(&query, k);
        let want = &expected[..k.min(expected.len())];
        assert_eq!(got.neighbors.len(), want.len(), "k = {k}");
        for (n, &(idx, dist)) in got.neighbors.iter().zip(want) {
            assert_eq!(n.graph.index(), idx, "k = {k}");
            assert!((n.distance - dist).abs() < 1e-9, "k = {k}: {} vs {dist}", n.distance);
        }
    }
}

#[test]
fn non_contained_query_has_no_answers() {
    let system = toy_system();
    // A 7-ring never embeds in a 6-ring database.
    let query = ring(&[1, 2, 1, 2, 1, 2, 1]);
    assert!(system.search(&query, 100.0).answers.is_empty());
    assert!(system.knn(&query, 3).neighbors.is_empty());
}
