//! Fault-injection tier (runs only with `--features failpoints`).
//!
//! The `failpoints` feature compiles deterministic failpoint consults
//! into every budget checkpoint (see `vendor/failpoints`), so these
//! tests can force "the deadline elapsed exactly at checkpoint N of
//! phase X" — or a worker panic at that spot — without racing a real
//! clock. Each scenario asserts the robustness contract: truncated but
//! sound, or panicked but reusable.
#![cfg(feature = "failpoints")]

mod common;

use std::sync::Mutex;

use common::ring;
use pis::core::PisSearcher;
use pis::distance::oracle::sssd_brute;
use pis::prelude::*;

/// The failpoint registry is process-global: every test serializes
/// itself behind this lock and disarms on entry and exit.
static SERIAL: Mutex<()> = Mutex::new(());

fn db() -> Vec<LabeledGraph> {
    vec![
        ring(&[1, 1, 1, 1, 1, 1]),
        ring(&[1, 1, 1, 1, 1, 2]),
        ring(&[1, 1, 1, 1, 2, 2]),
        ring(&[1, 1, 1, 2, 2, 2]),
        ring(&[2, 2, 2, 2, 2, 2]),
        ring(&[1, 2, 1, 2, 1, 2]),
    ]
}

fn system(partition: PartitionAlgo) -> PisSystem {
    PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .exhaustive_features(4)
        .search_config(PisConfig { partition, ..PisConfig::default() })
        .build(db())
}

/// Exact answer set of the brute-force oracle, as raw indices.
fn exact(database: &[LabeledGraph], query: &LabeledGraph, sigma: f64) -> Vec<usize> {
    sssd_brute(database, query, &MutationDistance::edge_hamming(), sigma)
}

/// Asserts the graceful-degradation contract of one outcome against the
/// oracle: verified answers ⊆ exact, and exact ⊆ answers ∪ possible.
fn assert_sound(outcome: &SearchOutcome, exact: &[usize], context: &str) {
    for a in &outcome.answers {
        assert!(exact.contains(&a.index()), "{context}: fabricated answer {a}");
    }
    for e in exact {
        let covered = outcome.answers.iter().any(|g| g.index() == *e)
            || outcome.possible.iter().any(|g| g.index() == *e);
        assert!(covered, "{context}: true answer {e} silently dropped");
    }
}

/// A deadline elapsing at checkpoint N of each phase — for every N until
/// the phase stops consulting — yields a truncated-but-sound outcome.
#[test]
fn deadline_at_every_checkpoint_of_every_phase_is_sound() {
    let _guard = SERIAL.lock().unwrap();
    let query = ring(&[1, 1, 1, 1, 1, 1]);
    let sigma = 2.0;
    let oracle = exact(&db(), &query, sigma);
    assert!(!oracle.is_empty(), "workload must have answers to protect");
    for (site, algo) in [
        ("range-descent", PartitionAlgo::Greedy),
        ("partition", PartitionAlgo::Exact),
        ("structure-check", PartitionAlgo::Greedy),
        ("verify", PartitionAlgo::Greedy),
    ] {
        let system = system(algo);
        let mut tripped_at_least_once = false;
        for n in 1..40u64 {
            failpoints::disarm_all();
            failpoints::arm(site, n);
            let outcome = system.search(&query, sigma);
            failpoints::disarm_all();
            assert_sound(&outcome, &oracle, &format!("{site} trip at consult {n}"));
            match &outcome.completeness {
                Completeness::Truncated { phase, .. } => {
                    tripped_at_least_once = true;
                    // The first tripping site is one of the armed
                    // phase's checkpoints (an earlier phase can only
                    // trip if it shares the site name, which none do).
                    assert_eq!(phase.name(), site, "trip must be attributed to its phase");
                }
                Completeness::Exact => {
                    // The site was consulted fewer than n times: the
                    // whole search ran to completion and must be exact.
                    let got: Vec<usize> = outcome.answers.iter().map(|g| g.index()).collect();
                    assert_eq!(got, oracle, "untripped run must equal the oracle");
                }
                Completeness::Degraded { shards } => {
                    panic!("an unsharded searcher cannot degrade (shards {shards:?})")
                }
            }
        }
        assert!(tripped_at_least_once, "site {site} was never consulted — dead checkpoint?");
    }
}

/// A mid-verification deadline leaves the already-verified prefix in
/// `answers` and every undecided candidate in `possible`.
#[test]
fn mid_verify_deadline_partitions_answers_and_possible() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let query = ring(&[1, 1, 1, 1, 1, 1]);
    let sigma = 2.0;
    let oracle = exact(&db(), &query, sigma);
    let system = system(PartitionAlgo::Greedy);
    // Trip at the second verify consult: at most one candidate decided.
    failpoints::arm("verify", 2);
    let outcome = system.search(&query, sigma);
    failpoints::disarm_all();
    assert!(!outcome.completeness.is_exact(), "the verify failpoint must trip");
    assert_sound(&outcome, &oracle, "mid-verify deadline");
    assert!(!outcome.possible.is_empty(), "undecided candidates must be reported");
    assert!(
        outcome.answers.len() < oracle.len(),
        "with the budget tripped mid-verify, some answers stay undecided"
    );
}

/// A panic at a verification checkpoint (modeling a crashed worker)
/// surfaces to the caller, and both the searcher and the scratch stay
/// fully usable afterwards.
#[test]
fn checkpoint_panic_surfaces_and_searcher_stays_usable() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let database = db();
    let index = PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .exhaustive_features(4)
        .build(database.clone());
    let searcher = PisSearcher::new(index.index(), &database, PisConfig::default());
    let query = ring(&[1, 1, 1, 1, 1, 1]);
    let sigma = 2.0;
    let mut scratch = SearchScratch::new();

    failpoints::arm_panic("verify", 1);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        searcher.search_with_scratch(&query, sigma, &mut scratch)
    }));
    failpoints::disarm_all();
    let payload = caught.expect_err("the injected panic must surface to the caller");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    assert!(message.contains("failpoint panic"), "unexpected payload: {message}");

    // Same searcher, same scratch: the next query is exact and equals a
    // fresh-scratch run bit for bit.
    let after = searcher.search_with_scratch(&query, sigma, &mut scratch);
    let fresh = searcher.search_with_scratch(&query, sigma, &mut SearchScratch::new());
    assert!(after.completeness.is_exact());
    assert_eq!(after.answers, fresh.answers);
    assert_eq!(after.candidates, fresh.candidates);
    assert_eq!(after.stats, fresh.stats);
    let oracle = exact(&database, &query, sigma);
    let got: Vec<usize> = after.answers.iter().map(|g| g.index()).collect();
    assert_eq!(got, oracle);
}

/// A kNN round tripping at its doubling checkpoint returns best-so-far
/// neighbors with a certified radius no larger than the explored one.
#[test]
fn knn_round_trip_returns_certified_best_so_far() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let system = system(PartitionAlgo::Greedy);
    let query = ring(&[1, 1, 1, 1, 1, 1]);
    let complete = system.knn(&query, 3);
    assert!(complete.completeness.is_exact());
    for n in 1..4u64 {
        failpoints::disarm_all();
        failpoints::arm("knn", n);
        let outcome = system.knn(&query, 3);
        failpoints::disarm_all();
        assert!(outcome.certified_radius <= outcome.radius);
        if !outcome.completeness.is_exact() {
            // Best-so-far neighbors are a prefix of the complete
            // ranking's answer set by distance.
            for found in &outcome.neighbors {
                assert!(
                    complete.neighbors.iter().any(|c| c.distance <= found.distance),
                    "truncated kNN reported a neighbor the complete run beats entirely"
                );
            }
        }
    }
}
