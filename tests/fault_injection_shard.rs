//! Shard fault-injection tier (runs only with `--features failpoints`).
//!
//! Scatter-gather scenarios against the `ShardRouter`: a panicked shard
//! worker, a shard stalled past its sub-deadline on both replicas, a
//! failed primary served by its replica, a corrupt replica tripping
//! quarantine, and a generation handoff re-routing attempts. Each
//! scenario asserts the robustness contract — typed errors with correct
//! shard attribution, `Degraded` completeness naming exactly the dark
//! shards, and `answers ⊆ exact` throughout.
#![cfg(feature = "failpoints")]

mod common;

use std::sync::Mutex;

use common::ring;
use pis::core::PisSearcher;
use pis::distance::oracle::sssd_brute;
use pis::prelude::*;

/// The failpoint registry is process-global: every test serializes
/// itself behind this lock and disarms on entry and exit.
static SERIAL: Mutex<()> = Mutex::new(());

fn db() -> Vec<LabeledGraph> {
    vec![
        ring(&[1, 1, 1, 1, 1, 1]),
        ring(&[1, 1, 1, 1, 1, 2]),
        ring(&[1, 1, 1, 1, 2, 2]),
        ring(&[1, 1, 1, 2, 2, 2]),
        ring(&[2, 2, 2, 2, 2, 2]),
        ring(&[1, 2, 1, 2, 1, 2]),
    ]
}

fn system() -> PisSystem {
    PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .exhaustive_features(4)
        .build(db())
}

/// Two class shards with a short cooldown so the quarantine state
/// machine is observable within a few queries.
fn sharded_config() -> PisConfig {
    let shard = ShardConfig { cooldown_probes: 2, ..ShardConfig::new(2) };
    PisConfig { shard: Some(shard), ..PisConfig::default() }
}

/// Exact answer set of the brute-force oracle, as raw indices.
fn exact(database: &[LabeledGraph], query: &LabeledGraph, sigma: f64) -> Vec<usize> {
    sssd_brute(database, query, &MutationDistance::edge_hamming(), sigma)
}

/// Asserts the graceful-degradation contract of one outcome against the
/// oracle: verified answers ⊆ exact, and exact ⊆ answers ∪ possible.
fn assert_sound(outcome: &SearchOutcome, exact: &[usize], context: &str) {
    for a in &outcome.answers {
        assert!(exact.contains(&a.index()), "{context}: fabricated answer {a}");
    }
    for e in exact {
        let covered = outcome.answers.iter().any(|g| g.index() == *e)
            || outcome.possible.iter().any(|g| g.index() == *e);
        assert!(covered, "{context}: true answer {e} silently dropped");
    }
}

/// A worker panicking mid-descent (the `range-descent` checkpoint, so
/// every shard's kernel crashes) is caught at the shard boundary: the
/// query returns `Degraded` instead of propagating the panic, the
/// failure is typed `Panicked` with the right shard, and the searcher
/// recovers fully once the fault clears.
#[test]
fn panicked_shard_worker_is_contained_and_degrades() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let system = system();
    let searcher = PisSearcher::new(system.index(), system.database(), sharded_config());
    let query = ring(&[1, 1, 1, 1, 1, 1]);
    let sigma = 2.0;
    let oracle = exact(system.database(), &query, sigma);

    failpoints::arm_panic("range-descent", 1);
    let outcome = searcher.search(&query, sigma);
    failpoints::disarm_all();

    // Unsharded, this exact fault surfaces as a caller-visible panic
    // (see `fault_injection.rs`); the shard boundary contains it.
    assert_sound(&outcome, &oracle, "panicked shard workers");
    let Completeness::Degraded { shards } = &outcome.completeness else {
        panic!("a sticky panic in every shard kernel must degrade: {:?}", outcome.completeness);
    };
    assert!(!shards.is_empty());
    let router = searcher.router().expect("sharded searcher");
    for &s in shards {
        assert!(s < router.shards(), "degraded shard {s} out of range");
        let health = &router.health()[s];
        assert_eq!(health.last_error, Some(ShardError::Panicked { shard: s }));
        assert_eq!(health.retries, 1, "one replica failover per dark shard");
    }

    // The fault cleared: the same searcher answers exactly again.
    let after = searcher.search(&query, sigma);
    assert!(after.completeness.is_exact(), "recovered searcher is exact");
    let got: Vec<usize> = after.answers.iter().map(|g| g.index()).collect();
    assert_eq!(got, oracle);
}

/// A failed primary is served by the replica: the outcome stays exact
/// and byte-identical to the unsharded run, with the failover visible
/// only in the health counters.
#[test]
fn failed_primary_is_served_by_the_replica() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let system = system();
    let reference = PisSearcher::new(system.index(), system.database(), PisConfig::default());
    let searcher = PisSearcher::new(system.index(), system.database(), sharded_config());
    let query = ring(&[1, 1, 1, 1, 1, 1]);
    let sigma = 2.0;
    let expect = reference.search(&query, sigma);

    failpoints::arm("shard-0-primary", 1);
    let outcome = searcher.search(&query, sigma);
    failpoints::disarm_all();

    assert!(outcome.completeness.is_exact(), "the replica served: {:?}", outcome.completeness);
    assert_eq!(outcome.answers, expect.answers);
    assert_eq!(outcome.candidates, expect.candidates);
    let bits: Vec<u64> = outcome.answer_distances.iter().map(|d| d.to_bits()).collect();
    let expect_bits: Vec<u64> = expect.answer_distances.iter().map(|d| d.to_bits()).collect();
    assert_eq!(bits, expect_bits, "replica-served answers are bit-identical");
    assert_eq!(outcome.stats.shard_retries, 1);
    assert_eq!(outcome.stats.shard_failures, 1);

    let router = searcher.router().expect("sharded searcher");
    let health = &router.health()[0];
    assert_eq!(health.failures, 1);
    assert_eq!(health.retries, 1);
    assert!(health.calls >= 2, "primary attempt plus replica retry");
    assert!(!health.quarantined, "one failure is far from the threshold");
    assert_eq!(health.last_error, Some(ShardError::DeadlineExceeded { shard: 0 }));
    assert_eq!(router.health()[1].failures, 0, "the fault attributes to shard 0 only");
}

/// A shard stalled past its sub-deadline on the primary *and* the
/// replica stays dark: the query returns `Degraded` naming exactly that
/// shard, sound answers, typed `DeadlineExceeded` attribution.
#[test]
fn shard_dark_on_both_replicas_degrades_with_attribution() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let system = system();
    let searcher = PisSearcher::new(system.index(), system.database(), sharded_config());
    let query = ring(&[1, 1, 1, 1, 1, 1]);
    let sigma = 2.0;
    let oracle = exact(system.database(), &query, sigma);

    failpoints::arm("shard-0-primary", 1);
    failpoints::arm("shard-0-replica-0", 1);
    let outcome = searcher.search(&query, sigma);
    failpoints::disarm_all();

    assert_sound(&outcome, &oracle, "shard 0 dark");
    assert_eq!(
        outcome.completeness,
        Completeness::Degraded { shards: vec![0] },
        "exactly shard 0 stayed dark"
    );
    assert_eq!(outcome.stats.degraded_shards, vec![0]);
    assert_eq!(outcome.stats.shard_failures, 2, "primary and replica attempts both failed");
    let router = searcher.router().expect("sharded searcher");
    let health = &router.health()[0];
    assert_eq!(health.failures, 2);
    assert_eq!(health.last_error, Some(ShardError::DeadlineExceeded { shard: 0 }));
    assert!(!health.quarantined, "two failures stay under the threshold of 3");
    assert_eq!(router.health()[1].failures, 0, "shard 1 was healthy throughout");
}

/// A corrupt replica answer fails both attempts of every query until
/// the consecutive-failure threshold quarantines the shard; quarantined
/// queries skip it cheaply, the cooldown re-probe lifts the quarantine
/// once the fault clears, and every step stays sound.
#[test]
fn corrupt_replica_trips_quarantine_then_cooldown_lifts_it() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let system = system();
    let searcher = PisSearcher::new(system.index(), system.database(), sharded_config());
    let router = searcher.router().expect("sharded searcher");
    let query = ring(&[1, 1, 1, 1, 1, 1]);
    let sigma = 2.0;
    let oracle = exact(system.database(), &query, sigma);

    // Both roles of shard 0 return detectably corrupt answers.
    failpoints::arm("shard-0-primary-corrupt", 1);
    failpoints::arm("shard-0-replica-0-corrupt", 1);

    // Query 1: two failures (streak 2, under the threshold of 3).
    let q1 = searcher.search(&query, sigma);
    assert_sound(&q1, &oracle, "corrupt replica, query 1");
    assert_eq!(q1.completeness, Completeness::Degraded { shards: vec![0] });
    assert!(!router.is_quarantined(0));

    // Query 2: the third consecutive failure trips quarantine.
    let q2 = searcher.search(&query, sigma);
    assert_sound(&q2, &oracle, "corrupt replica, query 2");
    assert_eq!(q2.completeness, Completeness::Degraded { shards: vec![0] });
    assert!(router.is_quarantined(0), "threshold 3 tripped during query 2");
    let health = &router.health()[0];
    assert_eq!(health.quarantine_trips, 1);
    assert_eq!(health.last_error, Some(ShardError::Corrupt { shard: 0 }));

    // Query 3: inside the cooldown window the shard is skipped without
    // an attempt — degraded, one skip counted, no new failures.
    let failures_before = router.health()[0].failures;
    let q3 = searcher.search(&query, sigma);
    assert_sound(&q3, &oracle, "quarantined skip, query 3");
    assert_eq!(q3.completeness, Completeness::Degraded { shards: vec![0] });
    assert_eq!(router.health()[0].failures, failures_before, "skips make no attempts");
    assert_eq!(router.health()[0].skipped_queries, 1);

    // The fault clears; the cooldown re-probe (every 2nd query here)
    // succeeds and lifts the quarantine.
    failpoints::disarm_all();
    let q4 = searcher.search(&query, sigma);
    assert!(q4.completeness.is_exact(), "the re-probe served: {:?}", q4.completeness);
    assert!(!router.is_quarantined(0), "one success lifts quarantine");
    let got: Vec<usize> = q4.answers.iter().map(|g| g.index()).collect();
    assert_eq!(got, oracle);
}

/// A replica-set generation handoff re-routes which role serves the
/// first attempt: after `install`, an armed old-primary site is never
/// consulted, so the scatter succeeds without any failover.
#[test]
fn generation_handoff_routes_attempts_to_the_new_role() {
    let _guard = SERIAL.lock().unwrap();
    failpoints::disarm_all();
    let system = system();
    let searcher = PisSearcher::new(system.index(), system.database(), sharded_config());
    let router = searcher.router().expect("sharded searcher");
    let query = ring(&[1, 1, 1, 1, 1, 1]);
    let sigma = 2.0;
    let oracle = exact(system.database(), &query, sigma);

    // Generation 1: attempt 0 now serves from role 1 ("replica-0"), so
    // the armed primary site never fires.
    router.replica_set(0).install(1);
    failpoints::arm("shard-0-primary", 1);
    let outcome = searcher.search(&query, sigma);
    failpoints::disarm_all();

    assert!(outcome.completeness.is_exact(), "handoff dodged the fault");
    assert_eq!(outcome.stats.shard_retries, 0, "no failover was needed");
    let got: Vec<usize> = outcome.answers.iter().map(|g| g.index()).collect();
    assert_eq!(got, oracle);
    assert_eq!(router.health()[0].failures, 0);
}
