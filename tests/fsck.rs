//! Offline fsck ([`pis::check_store`]) against real durable stores:
//! a healthy store passes with the expected per-section tallies, every
//! corruption class comes back as a typed error, and checking never
//! modifies the store (a torn WAL tail is reported, not repaired —
//! unlike `DurableSystem::open`).

mod common;

use std::path::PathBuf;

use common::ring;
use pis::check_store;
use pis::durable::{SNAPSHOT_FILE, WAL_FILE};
use pis::index::PersistError;
use pis::prelude::*;

/// A per-test scratch directory, recreated on entry, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("pis-fsck-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base_system() -> PisSystem {
    PisSystem::builder()
        .mutation_distance(MutationDistance::edge_hamming())
        .exhaustive_features(3)
        .build(vec![ring(&[1, 1, 1, 1]), ring(&[1, 1, 2, 2]), ring(&[2, 2, 2, 2])])
}

#[test]
fn healthy_store_passes_with_expected_tallies() {
    let dir = TempDir::new("healthy");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    store.insert_graph(ring(&[1, 2, 1, 2])).unwrap();
    store.insert_graph(ring(&[2, 1, 1, 1])).unwrap();
    drop(store);

    let report = check_store(&dir.0).expect("healthy store must pass");
    assert_eq!(report.wal_records, 2);
    assert_eq!(report.wal_replayed, 2);
    assert_eq!(report.wal_skipped, 0);
    assert_eq!(report.torn_tail_bytes, 0);
    assert_eq!(report.graphs, 5);
    assert!(report.index.classes > 0);
    assert!(report.index.pending_entries > 0, "WAL replay lands in pending buffers");

    // After compaction the WAL is empty and everything is frozen.
    let mut store = DurableSystem::open(&dir.0, PisConfig::default()).unwrap();
    store.compact().unwrap();
    drop(store);
    let report = check_store(&dir.0).unwrap();
    assert_eq!(report.wal_records, 0);
    assert_eq!(report.index.pending_entries, 0);
    assert_eq!(report.graphs, 5);
}

#[test]
fn snapshot_bit_flip_is_a_typed_error() {
    let dir = TempDir::new("snapflip");
    drop(DurableSystem::create(&dir.0, base_system()).unwrap());
    let snap = dir.0.join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&snap, &bytes).unwrap();
    assert!(matches!(check_store(&dir.0), Err(PersistError::Corrupt { .. })));
}

#[test]
fn torn_wal_tail_is_reported_but_never_repaired() {
    let dir = TempDir::new("torn");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    store.insert_graph(ring(&[1, 2, 1, 2])).unwrap();
    store.insert_graph(ring(&[2, 1, 1, 1])).unwrap();
    drop(store);

    // Shear the last record in half — the shape a kill mid-append
    // leaves behind.
    let wal = dir.0.join(WAL_FILE);
    let bytes = std::fs::read(&wal).unwrap();
    let torn = &bytes[..bytes.len() - 5];
    std::fs::write(&wal, torn).unwrap();

    let report = check_store(&dir.0).expect("a torn tail is survivable, not corruption");
    assert_eq!(report.wal_replayed, 1, "the complete first record still replays");
    assert!(report.torn_tail_bytes > 0);
    assert_eq!(report.graphs, 4);
    // Read-only: the torn bytes are still on disk afterwards.
    assert_eq!(std::fs::read(&wal).unwrap().len(), torn.len());
}

#[test]
fn mid_wal_corruption_and_gapped_records_are_typed_errors() {
    let dir = TempDir::new("midwal");
    let mut store = DurableSystem::create(&dir.0, base_system()).unwrap();
    store.insert_graph(ring(&[1, 2, 1, 2])).unwrap();
    store.insert_graph(ring(&[2, 1, 1, 1])).unwrap();
    drop(store);
    let wal = dir.0.join(WAL_FILE);
    let pristine = std::fs::read(&wal).unwrap();

    // A flipped byte inside the first (fsynced) record's payload.
    let mut bytes = pristine.clone();
    bytes[8 + 8 + 2] ^= 0x01;
    std::fs::write(&wal, &bytes).unwrap();
    assert!(matches!(check_store(&dir.0), Err(PersistError::Corrupt { .. })));

    // A record naming a graph past the end of the store (gap): rewrite
    // the first record's graph id and refresh its CRC so only the
    // replay-order check can catch it.
    let mut bytes = pristine;
    bytes[8 + 8] = 99;
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = pis::index::codec::crc32(&bytes[16..16 + len]);
    bytes[12..16].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&wal, &bytes).unwrap();
    match check_store(&dir.0) {
        Err(PersistError::Corrupt { message, .. }) => {
            assert!(message.contains("names graph"), "{message}");
        }
        other => panic!("gapped WAL must be typed corruption, got {other:?}"),
    }
}
