//! Direct verification of the paper's central inequality (Eq. 2): for
//! any vertex-disjoint partition `{g_i}` of a query `Q`,
//! `Σ_i d(g_i, G) ≤ d(Q, G)` — for both mutation and linear distances.
//!
//! The pipeline tests check this indirectly (no lost answers); here the
//! inequality itself is exercised with explicitly constructed partitions
//! and the brute-force distance oracle.

mod common;

use common::{connected_graph, ring};
use pis::distance::oracle::min_superimposed_distance_brute;
use pis::prelude::*;
use proptest::prelude::*;

/// Splits a query into vertex-disjoint connected fragments: greedily
/// carve connected subgraphs of `piece` edges off the remaining
/// vertices. Not all vertices need be covered (Definition 3 allows
/// partial cover).
fn carve_partition(q: &LabeledGraph, piece: usize) -> Vec<LabeledGraph> {
    let mut used = vec![false; q.vertex_count()];
    let mut parts = Vec::new();
    for start in q.vertex_ids() {
        if used[start.index()] {
            continue;
        }
        // Grow a connected edge set among unused vertices.
        let mut edges = Vec::new();
        let mut frontier = vec![start];
        let mut in_part = vec![false; q.vertex_count()];
        in_part[start.index()] = true;
        while let Some(v) = frontier.pop() {
            if edges.len() >= piece {
                break;
            }
            for &(w, e) in q.neighbors(v) {
                if edges.len() >= piece {
                    break;
                }
                if !used[w.index()] && !in_part[w.index()] {
                    in_part[w.index()] = true;
                    edges.push(e);
                    frontier.push(w);
                }
            }
        }
        if edges.is_empty() {
            continue;
        }
        let (sub, map) = q.edge_subgraph(&edges);
        for v in &map {
            used[v.index()] = true;
        }
        parts.push(sub);
    }
    parts
}

#[test]
fn eq2_on_the_running_example() {
    // Query: alternating 6-ring. Target: all-2 ring (distance 3).
    let md = MutationDistance::edge_hamming();
    let q = ring(&[1, 2, 1, 2, 1, 2]);
    let g = ring(&[2, 2, 2, 2, 2, 2]);
    let dq = min_superimposed_distance_brute(&q, &g, &md).expect("isomorphic rings");
    assert_eq!(dq, 3.0);
    for piece in 1..=3 {
        let parts = carve_partition(&q, piece);
        let sum: f64 =
            parts.iter().filter_map(|p| min_superimposed_distance_brute(p, &g, &md)).sum();
        assert!(
            sum <= dq + 1e-9,
            "partition into {piece}-edge pieces violated Eq. 2: {sum} > {dq}"
        );
    }
}

#[test]
fn eq2_edge_hamming_with_duplicate_labels() {
    // Duplicate edge labels are where fragment bounds are loosest: each
    // carved piece can claim the target's cheap edges independently,
    // while the whole query competes for them once. The query asks for
    // four label-1 edges but the alternating target supplies only
    // three, so every superposition pays at least one substitution.
    let md = MutationDistance::edge_hamming();
    let q = ring(&[1, 1, 1, 1, 2, 2]);
    let g = ring(&[1, 2, 1, 2, 1, 2]);
    let dq = min_superimposed_distance_brute(&q, &g, &md).expect("isomorphic rings");
    assert_eq!(dq, 3.0);
    for piece in 1..=3 {
        let parts = carve_partition(&q, piece);
        let sum: f64 =
            parts.iter().filter_map(|p| min_superimposed_distance_brute(p, &g, &md)).sum();
        assert!(sum <= dq + 1e-9, "piece {piece}: Eq. 2 violated: {sum} > {dq}");
    }
    // The verifier's pair precheck sees exactly this deficit: one
    // missing label-1 edge at unit substitution cost. It must stay
    // below the true distance (admissible) while still being positive
    // (it refutes nothing here, but tightens the suffix bound).
    let lb = md.pair_lower_bound(&q, &g);
    assert_eq!(lb, 1.0);
    assert!(lb <= dq);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The pair-level precheck bound stays below the true distance on
    /// random contained pairs — for both mutation score matrices, and
    /// regardless of how many duplicate labels the strategies emit.
    #[test]
    fn pair_lower_bound_is_admissible(
        q in connected_graph(5, 2, 2),
        g in connected_graph(7, 3, 2),
        unit in prop::sample::select(vec![false, true]),
    ) {
        let md = if unit { MutationDistance::unit() } else { MutationDistance::edge_hamming() };
        if let Some(dq) = min_superimposed_distance_brute(&q, &g, &md) {
            let lb = md.pair_lower_bound(&q, &g);
            prop_assert!(lb <= dq + 1e-9, "pair bound {} exceeds true distance {}", lb, dq);
        }
    }

    /// Eq. (2) under the mutation distance on random pairs.
    #[test]
    fn eq2_mutation_distance(
        q in connected_graph(5, 2, 3),
        g in connected_graph(7, 3, 3),
        piece in 1usize..3,
    ) {
        let md = MutationDistance::edge_hamming();
        let Some(dq) = min_superimposed_distance_brute(&q, &g, &md) else {
            return Ok(()); // Q not contained in G: nothing to check.
        };
        let parts = carve_partition(&q, piece);
        let mut sum = 0.0;
        for p in &parts {
            match min_superimposed_distance_brute(p, &g, &md) {
                Some(d) => sum += d,
                // A fragment of a contained query is always contained.
                None => prop_assert!(false, "fragment of contained query missing"),
            }
        }
        prop_assert!(sum <= dq + 1e-9, "Eq. 2 violated: {} > {}", sum, dq);
    }

    /// Eq. (2) under the unit mutation distance (vertex labels scored
    /// too).
    #[test]
    fn eq2_unit_distance(
        q in connected_graph(5, 2, 2),
        g in connected_graph(6, 3, 2),
        piece in 1usize..3,
    ) {
        let md = MutationDistance::unit();
        let Some(dq) = min_superimposed_distance_brute(&q, &g, &md) else {
            return Ok(());
        };
        let parts = carve_partition(&q, piece);
        let sum: f64 = parts
            .iter()
            .map(|p| {
                min_superimposed_distance_brute(p, &g, &md)
                    .expect("fragments of a contained query are contained")
            })
            .sum();
        prop_assert!(sum <= dq + 1e-9, "Eq. 2 violated: {} > {}", sum, dq);
    }
}

#[test]
fn eq2_linear_distance_weighted_rings() {
    // Weighted rings: Eq. 2 for the linear distance.
    let ld = LinearDistance::edges_only();
    let mk = |ws: [f64; 6]| {
        let mut b = GraphBuilder::new();
        let vs = b.add_vertices(6, VertexAttr::labeled(Label(0)));
        for (i, w) in ws.into_iter().enumerate() {
            b.add_edge(vs[i], vs[(i + 1) % 6], EdgeAttr { label: Label(0), weight: w })
                .expect("ring is simple");
        }
        b.build()
    };
    let q = mk([1.0, 1.5, 1.0, 1.5, 1.0, 1.5]);
    let g = mk([1.2, 1.4, 1.1, 1.5, 1.0, 1.6]);
    let dq = min_superimposed_distance_brute(&q, &g, &ld).expect("isomorphic rings");
    for piece in 1..=3 {
        let parts = carve_partition(&q, piece);
        let sum: f64 = parts
            .iter()
            .map(|p| min_superimposed_distance_brute(p, &g, &ld).expect("contained"))
            .sum();
        assert!(sum <= dq + 1e-9, "piece {piece}: {sum} > {dq}");
    }
}
