//! Differential equivalence suite for the optimized candidate funnel.
//!
//! `PisSearcher::search_reference` keeps the seed's straight-line
//! transcription of Algorithm 2 (per-fragment `Vec` intersection,
//! per-candidate binary-search pruning, no memoization, no scratch
//! reuse) as an executable specification. These properties hold the
//! optimized path — bitset funnel, dense partition accumulator,
//! range-query memoization, scratch reuse, and the target-guided VF2
//! ordering behind it — to **byte-identical** `candidates`, `answers`,
//! `answer_distances` and `SearchStats` across random databases, both
//! distances, and all three partition algorithms.

mod common;

use common::{connected_graph, graph_database};
use pis::core::{PartitionAlgo, PisConfig, PisSearcher, SearchScratch};
use pis::prelude::*;
use proptest::prelude::*;

/// Asserts full outcome equality between the optimized funnel (run
/// twice through the same scratch, so reuse is exercised) and the
/// reference pipeline.
fn assert_equivalent(
    searcher: &PisSearcher<'_>,
    scratch: &mut SearchScratch,
    query: &LabeledGraph,
    sigma: f64,
) -> Result<(), TestCaseError> {
    let reference = searcher.search_reference(query, sigma);
    for round in 0..2 {
        let fast = searcher.search_with_scratch(query, sigma, scratch);
        prop_assert_eq!(&fast.candidates, &reference.candidates, "candidates, round {}", round);
        prop_assert_eq!(&fast.answers, &reference.answers, "answers, round {}", round);
        prop_assert_eq!(
            &fast.answer_distances,
            &reference.answer_distances,
            "distances, round {}",
            round
        );
        prop_assert_eq!(&fast.stats, &reference.stats, "stats, round {}", round);
    }
    Ok(())
}

/// Re-labels a graph's weights from its labels so the linear distance
/// has something to measure (the proptest strategies emit zero
/// weights).
fn weighted_from_labels(g: &LabeledGraph) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    for v in g.vertex_ids() {
        let attr = g.vertex(v);
        b.add_vertex(VertexAttr { label: attr.label, weight: attr.label.0 as f64 * 0.5 });
    }
    for e in g.edges() {
        b.add_edge(
            e.source,
            e.target,
            EdgeAttr { label: e.attr.label, weight: 1.0 + e.attr.label.0 as f64 },
        )
        .expect("copying a simple graph");
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Mutation distance, all partition algorithms, tuning swept.
    #[test]
    fn funnel_equals_reference_mutation(
        db in graph_database(8, 6, 3),
        query in connected_graph(5, 2, 3),
        sigma in 0.0f64..4.0,
        algo in prop::sample::select(vec![
            PartitionAlgo::Greedy,
            PartitionAlgo::EnhancedGreedy(2),
            PartitionAlgo::Exact,
        ]),
        epsilon in prop::sample::select(vec![0.0, 0.3]),
        lambda in prop::sample::select(vec![0.5, 1.0, 2.0]),
    ) {
        let system = PisSystem::builder()
            .mutation_distance(MutationDistance::edge_hamming())
            .exhaustive_features(3)
            .search_config(PisConfig { partition: algo, epsilon, lambda, ..PisConfig::default() })
            .build(db);
        let searcher = system.searcher();
        let mut scratch = SearchScratch::new();
        assert_equivalent(&searcher, &mut scratch, &query, sigma)?;
    }

    /// The unit mutation distance (vertex labels scored too) takes the
    /// trie through non-trivial vertex slots.
    #[test]
    fn funnel_equals_reference_unit_distance(
        db in graph_database(6, 5, 2),
        query in connected_graph(4, 1, 2),
        sigma in 0.0f64..3.0,
    ) {
        let system = PisSystem::builder()
            .mutation_distance(MutationDistance::unit())
            .exhaustive_features(3)
            .build(db);
        let searcher = system.searcher();
        let mut scratch = SearchScratch::new();
        assert_equivalent(&searcher, &mut scratch, &query, sigma)?;
    }

    /// Linear distance over the R-tree backend: weight vectors exercise
    /// the `f64`-keyed memo and the scaled-geometry range queries.
    #[test]
    fn funnel_equals_reference_linear(
        db in graph_database(6, 5, 3),
        query in connected_graph(4, 1, 3),
        sigma in 0.0f64..3.0,
        algo in prop::sample::select(vec![
            PartitionAlgo::Greedy,
            PartitionAlgo::EnhancedGreedy(2),
            PartitionAlgo::Exact,
        ]),
    ) {
        let db: Vec<LabeledGraph> = db.iter().map(weighted_from_labels).collect();
        let query = weighted_from_labels(&query);
        let system = PisSystem::builder()
            .linear_distance(LinearDistance::edges_only())
            .exhaustive_features(3)
            .search_config(PisConfig { partition: algo, ..PisConfig::default() })
            .build(db);
        let searcher = system.searcher();
        let mut scratch = SearchScratch::new();
        assert_equivalent(&searcher, &mut scratch, &query, sigma)?;
    }

    /// One scratch across a whole shifting workload (different queries,
    /// sigmas rising and falling) never leaks state between searches.
    #[test]
    fn scratch_survives_a_mixed_workload(
        db in graph_database(7, 5, 3),
        queries in proptest::collection::vec(connected_graph(5, 2, 3), 1..4),
        sigmas in proptest::collection::vec(0.0f64..4.0, 1..4),
    ) {
        let system = PisSystem::builder().exhaustive_features(3).build(db);
        let searcher = system.searcher();
        let mut scratch = SearchScratch::new();
        for q in &queries {
            for &sigma in &sigmas {
                assert_equivalent(&searcher, &mut scratch, q, sigma)?;
            }
        }
    }

    /// The knn radius schedule's seed reuse (resolved distances carried
    /// across doubling rounds) never changes the answer: neighbors match
    /// the brute-force ranking exactly, and reuse only ever removes
    /// verification work.
    #[test]
    fn knn_seed_reuse_matches_brute_force(
        db in graph_database(8, 6, 3),
        query in connected_graph(5, 2, 3),
        k in 1usize..6,
        initial_radius in prop::sample::select(vec![0.25, 0.5, 1.0]),
    ) {
        let system = PisSystem::builder()
            .mutation_distance(MutationDistance::edge_hamming())
            .exhaustive_features(3)
            .build(db.clone());
        let searcher = system.searcher();
        let max_radius = (query.edge_count() as f64).max(1.0);
        let knn = searcher.knn(&query, k, initial_radius, max_radius);
        // Brute-force ranking: exact min distance per containing graph.
        let md = MutationDistance::edge_hamming();
        let mut expected: Vec<(usize, f64)> = db
            .iter()
            .enumerate()
            .filter_map(|(i, g)| {
                pis::distance::oracle::min_superimposed_distance_brute(&query, g, &md)
                    .map(|d| (i, d))
            })
            .filter(|&(_, d)| d <= knn.radius)
            .collect();
        expected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        expected.truncate(k);
        let got: Vec<(usize, f64)> =
            knn.neighbors.iter().map(|n| (n.graph.index(), n.distance)).collect();
        prop_assert_eq!(got, expected, "k {} radius {}", k, knn.radius);
        // Reuse accounting: reuses are counted per distinct candidate,
        // so they can never exceed the verifications that resolved them
        // (or the database size), no matter how many widening rounds
        // re-encounter the same resolved candidates.
        prop_assert!(knn.rounds >= 1);
        if knn.rounds == 1 {
            prop_assert_eq!(knn.reused_verifications, 0, "nothing to reuse in round one");
        }
        prop_assert!(
            knn.reused_verifications <= knn.verification_calls,
            "distinct reuses ({}) exceed verification calls ({})",
            knn.reused_verifications, knn.verification_calls
        );
        prop_assert!(
            knn.reused_verifications <= db.len(),
            "distinct reuses ({}) exceed the database size ({})",
            knn.reused_verifications, db.len()
        );
    }

    /// Best-first verification scheduling (the default) is a pure work
    /// optimization: against stream-order scheduling
    /// (`best_first_verify: false`, the seed schedule) it returns the
    /// identical neighbor set with bit-identical distances, the same
    /// final radius, the same round count and the same distinct-reuse
    /// statistic — while never making *more* verification calls. Only
    /// the terminal round ever tightens budgets or skips, so every
    /// widening decision is shared between the two schedules.
    #[test]
    fn best_first_knn_matches_stream_order(
        db in graph_database(8, 6, 3),
        query in connected_graph(5, 2, 3),
        k in 1usize..6,
        initial_radius in prop::sample::select(vec![0.25, 0.5, 1.0]),
    ) {
        let system = PisSystem::builder()
            .mutation_distance(MutationDistance::edge_hamming())
            .exhaustive_features(3)
            .build(db);
        let best_first = system.searcher();
        let stream = PisSearcher::new(
            system.index(),
            system.database(),
            PisConfig { best_first_verify: false, ..PisConfig::default() },
        );
        let max_radius = (query.edge_count() as f64).max(1.0);
        let a = best_first.knn(&query, k, initial_radius, max_radius);
        let b = stream.knn(&query, k, initial_radius, max_radius);
        let pairs = |o: &pis::core::KnnOutcome| -> Vec<(GraphId, u64)> {
            o.neighbors.iter().map(|n| (n.graph, n.distance.to_bits())).collect()
        };
        prop_assert_eq!(pairs(&a), pairs(&b), "neighbor sets diverge");
        prop_assert_eq!(a.radius.to_bits(), b.radius.to_bits(), "final radius diverges");
        prop_assert_eq!(a.rounds, b.rounds, "widening schedule diverges");
        prop_assert_eq!(
            a.reused_verifications, b.reused_verifications,
            "cross-round reuse diverges"
        );
        prop_assert!(
            a.verification_calls <= b.verification_calls,
            "best-first must not verify more: {} vs {}",
            a.verification_calls, b.verification_calls
        );
    }

    /// Pruning-only configurations (the figures' setting) agree too —
    /// candidates are the observable there, not answers. All three
    /// partition algorithms run, so the mask-native stage is held to
    /// the pointer reference across every solver the config can pick.
    #[test]
    fn funnel_equals_reference_prune_only(
        db in graph_database(8, 6, 3),
        query in connected_graph(5, 2, 3),
        sigma in 0.0f64..4.0,
        structure_check in prop::sample::select(vec![true, false]),
        algo in prop::sample::select(vec![
            PartitionAlgo::Greedy,
            PartitionAlgo::EnhancedGreedy(2),
            PartitionAlgo::Exact,
        ]),
    ) {
        let system = PisSystem::builder()
            .exhaustive_features(3)
            .search_config(PisConfig {
                verify: false,
                structure_check,
                partition: algo,
                ..PisConfig::default()
            })
            .build(db);
        let searcher = system.searcher();
        let mut scratch = SearchScratch::new();
        assert_equivalent(&searcher, &mut scratch, &query, sigma)?;
    }
}
