//! Property tests of the graph substrate: canonical-form soundness and
//! matcher correctness on random small graphs.

mod common;

use common::connected_graph;
use pis::graph::canonical::{min_dfs_code, naive_canonical};
use pis::graph::iso::{embeddings, IsoConfig};
use pis::prelude::*;
use proptest::prelude::*;

/// Applies a vertex permutation to a graph.
fn permute(g: &LabeledGraph, perm: &[usize]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let mut placed = vec![VertexId(0); g.vertex_count()];
    // perm[i] = new position of old vertex i; insert in new order.
    let mut order: Vec<usize> = (0..g.vertex_count()).collect();
    order.sort_by_key(|&i| perm[i]);
    for &old in &order {
        placed[old] = b.add_vertex(g.vertex(VertexId(old as u32)));
    }
    for e in g.edges() {
        b.add_edge(placed[e.source.index()], placed[e.target.index()], e.attr)
            .expect("permutation preserves simplicity");
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The minimum DFS code is invariant under vertex relabeling.
    #[test]
    fn canonical_code_is_permutation_invariant(
        g in connected_graph(7, 3, 3),
        seed in 0u64..1000,
    ) {
        let n = g.vertex_count();
        // A deterministic pseudo-random permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_add(0x9e3779b97f4a7c15);
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            perm.swap(i, (s as usize) % (i + 1));
        }
        let h = permute(&g, &perm);
        let cg = min_dfs_code(&g).expect("connected").code;
        let ch = min_dfs_code(&h).expect("connected").code;
        prop_assert_eq!(cg, ch);
    }

    /// DFS-code equality coincides with the factorial canonical oracle.
    #[test]
    fn dfs_code_agrees_with_naive_canonical(
        a in connected_graph(6, 2, 2),
        b in connected_graph(6, 2, 2),
    ) {
        let code_eq = min_dfs_code(&a).expect("connected").code
            == min_dfs_code(&b).expect("connected").code;
        let naive_eq = naive_canonical(&a) == naive_canonical(&b);
        prop_assert_eq!(code_eq, naive_eq);
    }

    /// Reconstructing the canonical representative is a fixpoint.
    #[test]
    fn canonical_reconstruction_is_fixpoint(g in connected_graph(7, 3, 3)) {
        let canon = min_dfs_code(&g).expect("connected");
        let rebuilt = canon.code.to_graph();
        let again = min_dfs_code(&rebuilt).expect("connected");
        prop_assert_eq!(&canon.code, &again.code);
        // The rebuilt graph realizes its own code with identity order.
        for (i, v) in again.vertex_order.iter().enumerate() {
            prop_assert_eq!(v.index(), i);
        }
    }

    /// Every embedding returned by the matcher is a valid monomorphism.
    #[test]
    fn embeddings_are_monomorphisms(
        pattern in connected_graph(4, 1, 2),
        target in connected_graph(7, 3, 2),
    ) {
        for emb in embeddings(&pattern, &target, IsoConfig::STRUCTURE) {
            // Injective.
            let mut image: Vec<_> = emb.vertex_map().to_vec();
            image.sort_unstable();
            let before = image.len();
            image.dedup();
            prop_assert_eq!(image.len(), before, "mapping must be injective");
            // Edge-preserving.
            for e in pattern.edges() {
                let (u, v) = (emb.vertex_image(e.source), emb.vertex_image(e.target));
                prop_assert!(target.has_edge(u, v), "edge not preserved");
            }
        }
    }

    /// Labeled matching is a subset of structural matching.
    #[test]
    fn labeled_embeddings_subset_of_structural(
        pattern in connected_graph(4, 1, 2),
        target in connected_graph(6, 2, 2),
    ) {
        let labeled = embeddings(&pattern, &target, IsoConfig::LABELED);
        let structural = embeddings(&pattern, &target, IsoConfig::STRUCTURE);
        prop_assert!(labeled.len() <= structural.len());
        for e in &labeled {
            prop_assert!(structural.contains(e));
        }
    }

    /// A graph always embeds into itself (identity included).
    #[test]
    fn self_embedding_exists(g in connected_graph(6, 2, 3)) {
        let autos = pis::graph::iso::automorphisms(&g);
        prop_assert!(!autos.is_empty());
        let identity: Vec<VertexId> = g.vertex_ids().collect();
        prop_assert!(autos.iter().any(|a| a.vertex_map() == identity.as_slice()));
    }

    /// Structural embedding count of a pattern into a target equals
    /// (number of distinct label-erased subgraph sites) × |Aut(pattern)|
    /// is hard to state generally, but counts must at least be a
    /// multiple of the pattern's automorphism count.
    #[test]
    fn embedding_count_is_multiple_of_automorphisms(
        pattern in connected_graph(4, 1, 1),
        target in connected_graph(7, 2, 1),
    ) {
        let bare_pattern = pattern.erase_labels();
        let bare_target = target.erase_labels();
        let autos = pis::graph::iso::automorphisms(&bare_pattern).len();
        let embs = embeddings(&bare_pattern, &bare_target, IsoConfig::STRUCTURE).len();
        prop_assert!(autos > 0);
        prop_assert_eq!(embs % autos, 0, "embeddings {} autos {}", embs, autos);
    }

    /// Text serialization round-trips arbitrary graphs.
    #[test]
    fn io_round_trip(g in connected_graph(7, 3, 4)) {
        use pis::graph::io::{parse_database, write_database};
        let db = vec![g];
        let parsed = parse_database(&write_database(&db)).expect("round trip parses");
        prop_assert_eq!(parsed, db);
    }

    /// The VF2 matcher agrees with a brute-force permutation oracle on
    /// tiny instances: `pattern ⊆ target` iff some injective vertex map
    /// preserves all pattern edges.
    #[test]
    fn matcher_agrees_with_permutation_oracle(
        pattern in connected_graph(4, 2, 1),
        target in connected_graph(5, 3, 1),
    ) {
        fn oracle(pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
            let np = pattern.vertex_count();
            let nt = target.vertex_count();
            if np > nt {
                return false;
            }
            // Enumerate all injective maps via permutations of target
            // vertices taken np at a time.
            fn rec(
                pattern: &LabeledGraph,
                target: &LabeledGraph,
                map: &mut Vec<VertexId>,
                used: &mut Vec<bool>,
            ) -> bool {
                let p = map.len();
                if p == pattern.vertex_count() {
                    return true;
                }
                for t in 0..target.vertex_count() {
                    if used[t] {
                        continue;
                    }
                    // Check edges from p to already-mapped vertices.
                    let ok = pattern.neighbors(VertexId(p as u32)).iter().all(|&(q, _)| {
                        q.index() >= map.len()
                            || target.has_edge(map[q.index()], VertexId(t as u32))
                    });
                    if !ok {
                        continue;
                    }
                    map.push(VertexId(t as u32));
                    used[t] = true;
                    if rec(pattern, target, map, used) {
                        return true;
                    }
                    used[t] = false;
                    map.pop();
                }
                false
            }
            rec(pattern, target, &mut Vec::new(), &mut vec![false; nt])
        }
        let fast = pis::graph::iso::is_subgraph(&pattern, &target, IsoConfig::STRUCTURE);
        prop_assert_eq!(fast, oracle(&pattern, &target));
    }

    /// Subgraph enumeration yields connected, distinct edge sets.
    #[test]
    fn enumeration_yields_connected_distinct(g in connected_graph(6, 3, 1)) {
        use pis::graph::enumerate::connected_edge_subgraphs;
        let mut seen = std::collections::BTreeSet::new();
        connected_edge_subgraphs(&g, 3, |edges| {
            let key: Vec<u32> = {
                let mut k: Vec<u32> = edges.iter().map(|e| e.0).collect();
                k.sort_unstable();
                k
            };
            assert!(seen.insert(key), "duplicate subgraph");
            let (sub, _) = g.edge_subgraph(edges);
            assert!(sub.is_connected());
        });
        prop_assert!(!seen.is_empty());
    }
}
