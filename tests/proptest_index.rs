//! Property tests of the fragment index on arbitrary databases: range
//! queries must equal brute-force minimum superposition distances,
//! backends must agree, and persistence must round-trip exactly.

mod common;

use common::{connected_graph, graph_database};
use pis::distance::oracle::min_superimposed_distance_brute;
use pis::index::{load_index, save_index, Backend, FragmentIndex, IndexConfig, IndexDistance};
use pis::mining::exhaustive::exhaustive_features;
use pis::prelude::*;
use proptest::prelude::*;

fn build_index(db: &[LabeledGraph], backend: Backend, max_edges: usize) -> FragmentIndex {
    let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
    FragmentIndex::build(
        db,
        exhaustive_features(&structures, max_edges),
        IndexDistance::Mutation(MutationDistance::edge_hamming()),
        &IndexConfig { backend, ..IndexConfig::default() },
    )
}

/// Rebuilds a query fragment as a standalone labeled graph (the
/// fragment's vector in the feature's canonical layout).
fn fragment_as_graph(index: &FragmentIndex, qf: &pis::index::QueryFragment) -> LabeledGraph {
    let feature = index.features().get(qf.feature);
    let labels = qf.vector.labels();
    let ecount = feature.edge_count();
    let mut b = GraphBuilder::new();
    for (i, _) in feature.structure.vertex_ids().enumerate() {
        b.add_vertex(VertexAttr::labeled(labels[ecount + i]));
    }
    for (j, e) in feature.structure.edges().iter().enumerate() {
        b.add_edge(e.source, e.target, EdgeAttr::labeled(labels[j])).expect("feature is simple");
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Eq. (3): the index range query returns exactly the graphs within
    /// sigma, each with its exact minimum superposition distance.
    #[test]
    fn range_query_equals_brute_force(
        db in graph_database(6, 5, 3),
        query in connected_graph(4, 2, 3),
        sigma in 0.0f64..3.0,
    ) {
        let index = build_index(&db, Backend::Default, 3);
        let md = MutationDistance::edge_hamming();
        for qf in index.enumerate_query_fragments(&query) {
            let frag = fragment_as_graph(&index, &qf);
            let hits = index.range_query(qf.feature, &qf.vector, sigma);
            // Soundness: every hit's distance is exact and within sigma.
            for (gid, d) in &hits {
                let brute = min_superimposed_distance_brute(&frag, &db[gid.index()], &md)
                    .expect("hits contain the structure");
                prop_assert!((d - brute).abs() < 1e-9, "distance {} vs brute {}", d, brute);
                prop_assert!(*d <= sigma);
            }
            // Completeness: no graph within sigma is missed.
            for (gi, g) in db.iter().enumerate() {
                if let Some(brute) = min_superimposed_distance_brute(&frag, g, &md) {
                    if brute <= sigma {
                        prop_assert!(
                            hits.iter().any(|(h, _)| h.index() == gi),
                            "graph {} at distance {} missing at sigma {}",
                            gi, brute, sigma
                        );
                    }
                }
            }
        }
    }

    /// The trie and the VP-tree backend agree entry-for-entry.
    #[test]
    fn backends_agree(
        db in graph_database(5, 5, 2),
        query in connected_graph(4, 1, 2),
        sigma in 0.0f64..3.0,
    ) {
        let trie = build_index(&db, Backend::Trie, 3);
        let vp = build_index(&db, Backend::VpTree, 3);
        for qf in trie.enumerate_query_fragments(&query) {
            let a = trie.range_query(qf.feature, &qf.vector, sigma);
            let b = vp.range_query(qf.feature, &qf.vector, sigma);
            prop_assert_eq!(a.len(), b.len());
            for ((g1, d1), (g2, d2)) in a.iter().zip(&b) {
                prop_assert_eq!(g1, g2);
                prop_assert!((d1 - d2).abs() < 1e-9);
            }
        }
    }

    /// Persistence round-trips arbitrary indexes exactly.
    #[test]
    fn persist_round_trip(
        db in graph_database(5, 5, 3),
        query in connected_graph(4, 1, 3),
    ) {
        let index = build_index(&db, Backend::Default, 3);
        let mut buf = Vec::new();
        save_index(&index, &mut buf).expect("in-memory save");
        let loaded = load_index(buf.as_slice()).expect("round trip");
        prop_assert_eq!(loaded.graph_count(), index.graph_count());
        prop_assert_eq!(loaded.total_entries(), index.total_entries());
        for qf in index.enumerate_query_fragments(&query) {
            for sigma in [0.0, 1.0, 2.5] {
                let a = index.range_query(qf.feature, &qf.vector, sigma);
                let b = loaded.range_query(qf.feature, &qf.vector, sigma);
                prop_assert_eq!(a, b, "sigma {}", sigma);
            }
        }
    }

    /// The frozen arena answers range queries **byte-identically** to
    /// the retained pointer-trie reference: same graphs, same f64
    /// distances (the frontier descent performs the same additions in
    /// the same order), across sigmas, position-dependent costs (unit
    /// distance scores vertex slots too) and duplicate
    /// `(sequence, graph)` storage.
    #[test]
    fn flat_trie_byte_identical_to_pointer_reference(
        db in graph_database(6, 5, 3),
        query in connected_graph(4, 2, 3),
        sigma in 0.0f64..4.0,
        unit in prop::sample::select(vec![false, true]),
    ) {
        let md = if unit { MutationDistance::unit() } else { MutationDistance::edge_hamming() };
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Mutation(md.clone()),
            &IndexConfig::default(),
        );
        for qf in index.enumerate_query_fragments(&query) {
            let feature = index.features().get(qf.feature);
            let ecount = feature.edge_count();
            // Rebuild the class's logical content in the pointer trie
            // (duplicates included: insert dedups exactly like the
            // arena builder does).
            let mut reference = pis::index::LabelTrie::new(qf.vector.len());
            for (gid, g) in db.iter().enumerate() {
                let matcher = pis::graph::iso::SubgraphMatcher::new(
                    &feature.structure,
                    g,
                    pis::graph::iso::IsoConfig::STRUCTURE,
                );
                matcher.for_each(|emb| {
                    let mut v = pis::index::fragment::label_vector(&feature.structure, g, emb);
                    index.distance().normalize_labels(ecount, &mut v);
                    reference.insert(&v, GraphId(gid as u32));
                    std::ops::ControlFlow::Continue(())
                });
            }
            // Reference hits: pointer-trie descent + per-graph minimum.
            let mut best: std::collections::BTreeMap<u32, f64> = Default::default();
            reference.range_query(
                qf.vector.labels(),
                sigma,
                |pos, a, b| md.position_cost(pos, ecount, a, b),
                |g, d| {
                    best.entry(g.0)
                        .and_modify(|m| if d < *m { *m = d })
                        .or_insert(d);
                },
            );
            let expected: Vec<(GraphId, f64)> =
                best.into_iter().map(|(g, d)| (GraphId(g), d)).collect();
            let hits = index.range_query(qf.feature, &qf.vector, sigma);
            // Byte-identical: exact f64 equality, not tolerance.
            prop_assert_eq!(hits, expected, "sigma {}", sigma);
        }
    }

    /// All flat-layout backends of the linear distance (SoA R-tree
    /// coordinates, SoA VP-tree vectors) agree with each other.
    #[test]
    fn linear_backends_agree(
        db in graph_database(5, 5, 3),
        query in connected_graph(4, 1, 3),
        sigma in 0.0f64..2.0,
    ) {
        // Give the weights something to measure (strategies emit zeros).
        let reweight = |g: &LabeledGraph| {
            let mut b = GraphBuilder::new();
            for v in g.vertex_ids() {
                let attr = g.vertex(v);
                b.add_vertex(VertexAttr { label: attr.label, weight: attr.label.0 as f64 });
            }
            for e in g.edges() {
                b.add_edge(e.source, e.target, EdgeAttr {
                    label: e.attr.label,
                    weight: 1.0 + e.attr.label.0 as f64 * 0.5,
                }).expect("copying a simple graph");
            }
            b.build()
        };
        let db: Vec<LabeledGraph> = db.iter().map(reweight).collect();
        let query = reweight(&query);
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 3);
        let ld = IndexDistance::Linear(LinearDistance::edges_only());
        let rt = FragmentIndex::build(
            &db,
            features.clone(),
            ld.clone(),
            &IndexConfig { backend: Backend::RTree, ..IndexConfig::default() },
        );
        let vp = FragmentIndex::build(
            &db,
            features,
            ld,
            &IndexConfig { backend: Backend::VpTree, ..IndexConfig::default() },
        );
        for qf in rt.enumerate_query_fragments(&query) {
            let a = rt.range_query(qf.feature, &qf.vector, sigma);
            let b = vp.range_query(qf.feature, &qf.vector, sigma);
            prop_assert_eq!(a.len(), b.len(), "hit counts differ at sigma {}", sigma);
            for ((g1, d1), (g2, d2)) in a.iter().zip(&b) {
                prop_assert_eq!(g1, g2);
                prop_assert!((d1 - d2).abs() < 1e-9, "{} vs {}", d1, d2);
            }
        }
    }

    /// The batched multi-probe descent answers every sibling group —
    /// duplicate probes included — **byte-identically** (f64 bits, not
    /// tolerance) to per-probe range queries, across both the
    /// edge-Hamming setting (whole-vertex zero suffix) and the unit
    /// distance (no zero suffix), and across sigmas spanning the
    /// zero-suffix short-circuit and both descent modes.
    #[test]
    fn batched_range_queries_byte_identical_to_per_probe(
        db in graph_database(6, 5, 3),
        query in connected_graph(4, 2, 3),
        sigma in 0.0f64..4.0,
        unit in prop::sample::select(vec![false, true]),
    ) {
        let md = if unit { MutationDistance::unit() } else { MutationDistance::edge_hamming() };
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Mutation(md),
            &IndexConfig::default(),
        );
        let frags = index.enumerate_query_fragments(&query);
        let mut scratch = pis::index::RangeScratch::new();
        let mut i = 0;
        while i < frags.len() {
            let feature = frags[i].feature;
            let mut j = i + 1;
            while j < frags.len() && frags[j].feature == feature {
                j += 1;
            }
            // Repeat the group's first probes so the batch prices
            // duplicates through the shared rows.
            let mut probe_of: Vec<usize> = (i..j).collect();
            probe_of.extend(i..j.min(i + 2));
            let mut outs: Vec<Vec<(GraphId, f64)>> = vec![Vec::new(); probe_of.len()];
            index.range_query_batch_normalized_into(
                feature,
                probe_of.len(),
                |k| frags[probe_of[k]].vector.as_view(),
                sigma,
                &mut scratch,
                &mut outs,
            );
            for (k, out) in outs.iter().enumerate() {
                let mut expected = Vec::new();
                index.range_query_normalized_into(
                    feature,
                    frags[probe_of[k]].vector.as_view(),
                    sigma,
                    &mut scratch,
                    &mut expected,
                );
                let got: Vec<(u32, u64)> =
                    out.iter().map(|&(g, d)| (g.0, d.to_bits())).collect();
                let want: Vec<(u32, u64)> =
                    expected.iter().map(|&(g, d)| (g.0, d.to_bits())).collect();
                prop_assert_eq!(got, want, "feature {} probe {} sigma {}", feature, k, sigma);
            }
            i = j;
        }
    }

    /// The batch entry point of a linear-distance (R-tree) index — the
    /// per-probe fallback — agrees bit-for-bit with scalar range
    /// queries too.
    #[test]
    fn batched_linear_range_queries_equal_per_probe(
        db in graph_database(5, 5, 3),
        query in connected_graph(4, 1, 3),
        sigma in 0.0f64..2.0,
    ) {
        let reweight = |g: &LabeledGraph| {
            let mut b = GraphBuilder::new();
            for v in g.vertex_ids() {
                let attr = g.vertex(v);
                b.add_vertex(VertexAttr { label: attr.label, weight: attr.label.0 as f64 });
            }
            for e in g.edges() {
                b.add_edge(e.source, e.target, EdgeAttr {
                    label: e.attr.label,
                    weight: 1.0 + e.attr.label.0 as f64 * 0.5,
                }).expect("copying a simple graph");
            }
            b.build()
        };
        let db: Vec<LabeledGraph> = db.iter().map(reweight).collect();
        let query = reweight(&query);
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let index = FragmentIndex::build(
            &db,
            exhaustive_features(&structures, 3),
            IndexDistance::Linear(LinearDistance::edges_only()),
            &IndexConfig { backend: Backend::RTree, ..IndexConfig::default() },
        );
        let frags = index.enumerate_query_fragments(&query);
        let mut scratch = pis::index::RangeScratch::new();
        let mut i = 0;
        while i < frags.len() {
            let feature = frags[i].feature;
            let mut j = i + 1;
            while j < frags.len() && frags[j].feature == feature {
                j += 1;
            }
            let mut outs: Vec<Vec<(GraphId, f64)>> = vec![Vec::new(); j - i];
            index.range_query_batch_normalized_into(
                feature,
                j - i,
                |k| frags[i + k].vector.as_view(),
                sigma,
                &mut scratch,
                &mut outs,
            );
            for (k, out) in outs.iter().enumerate() {
                let mut expected = Vec::new();
                index.range_query_normalized_into(
                    feature,
                    frags[i + k].vector.as_view(),
                    sigma,
                    &mut scratch,
                    &mut expected,
                );
                let got: Vec<(u32, u64)> =
                    out.iter().map(|&(g, d)| (g.0, d.to_bits())).collect();
                let want: Vec<(u32, u64)> =
                    expected.iter().map(|&(g, d)| (g.0, d.to_bits())).collect();
                prop_assert_eq!(got, want);
            }
            i = j;
        }
    }

    /// The frozen R-tree arena visits the same points in the same order
    /// with bit-identical distances as the retained pointer descent.
    #[test]
    fn rtree_arena_matches_pointer_reference(
        points in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 1..120),
        qx in 0.0f64..10.0,
        qy in 0.0f64..10.0,
        sigma in 0.0f64..12.0,
    ) {
        let mut t = pis::index::rtree::RTree::new(3);
        for (g, &(x, y, z)) in points.iter().enumerate() {
            t.insert(&[x, y, z], GraphId(g as u32));
        }
        t.freeze();
        let q = [qx, qy, 5.0];
        let mut arena = Vec::new();
        t.range_query(&q, sigma, |g, d| arena.push((g.0, d.to_bits())));
        let mut reference = Vec::new();
        t.range_query_reference(&q, sigma, |g, d| reference.push((g.0, d.to_bits())));
        prop_assert_eq!(arena, reference);
    }

    /// Incremental insertion matches bulk construction on arbitrary
    /// splits.
    #[test]
    fn incremental_matches_bulk(
        db in graph_database(6, 5, 3),
        query in connected_graph(4, 1, 3),
        split in 1usize..5,
    ) {
        let split = split.min(db.len());
        let structures: Vec<LabeledGraph> = db.iter().map(LabeledGraph::erase_labels).collect();
        let features = exhaustive_features(&structures, 3);
        let md = IndexDistance::Mutation(MutationDistance::edge_hamming());
        let mut incremental =
            FragmentIndex::build(&db[..split], features.clone(), md.clone(), &IndexConfig::default());
        for g in &db[split..] {
            incremental.insert_graph(g);
        }
        let bulk = FragmentIndex::build(&db, features, md, &IndexConfig::default());
        prop_assert_eq!(incremental.total_entries(), bulk.total_entries());
        for qf in bulk.enumerate_query_fragments(&query) {
            for sigma in [0.0, 1.0, 3.0] {
                prop_assert_eq!(
                    incremental.range_query(qf.feature, &qf.vector, sigma),
                    bulk.range_query(qf.feature, &qf.vector, sigma),
                    "sigma {}", sigma
                );
            }
        }
    }
}
