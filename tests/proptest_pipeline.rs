//! Property tests of the full pipeline: on arbitrary databases and
//! queries, every search strategy must agree with the brute-force
//! oracle, and the paper's invariants (lower bound, monotonicity,
//! losslessness) must hold.

mod common;

use common::{connected_graph, graph_database};
use pis::core::{min_superimposed_distance, PartitionAlgo, PisConfig};
use pis::distance::oracle::{min_superimposed_distance_brute, sssd_brute};
use pis::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PIS answers equal the brute-force SSSD answer set, whatever the
    /// database, query, threshold or tuning.
    #[test]
    fn pis_matches_oracle(
        db in graph_database(8, 6, 3),
        query in connected_graph(5, 2, 3),
        sigma in 0.0f64..4.0,
        lambda in prop::sample::select(vec![0.5, 1.0, 2.0]),
        epsilon in prop::sample::select(vec![0.0, 0.3]),
    ) {
        let md = MutationDistance::edge_hamming();
        let expected = sssd_brute(&db, &query, &md, sigma);
        let system = PisSystem::builder()
            .mutation_distance(md)
            .exhaustive_features(3)
            .search_config(PisConfig { lambda, epsilon, ..PisConfig::default() })
            .build(db.clone());
        let got: Vec<usize> =
            system.search(&query, sigma).answers.iter().map(|g| g.index()).collect();
        prop_assert_eq!(got, expected);
    }

    /// The unit mutation distance (vertex and edge labels both scored)
    /// also agrees with the oracle end to end.
    #[test]
    fn pis_matches_oracle_unit_distance(
        db in graph_database(6, 5, 2),
        query in connected_graph(4, 1, 2),
        sigma in 0.0f64..3.0,
    ) {
        let md = MutationDistance::unit();
        let expected = sssd_brute(&db, &query, &md, sigma);
        let system = PisSystem::builder()
            .mutation_distance(md)
            .exhaustive_features(3)
            .build(db.clone());
        let got: Vec<usize> =
            system.search(&query, sigma).answers.iter().map(|g| g.index()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Eq. (2): for the partition PIS selects, the fragment distance sum
    /// never exceeds the true superimposed distance of any graph that
    /// structurally contains the query. (Checked indirectly: no answer
    /// is ever pruned — candidates ⊇ answers.)
    #[test]
    fn pruning_is_lossless(
        db in graph_database(8, 6, 3),
        query in connected_graph(5, 2, 3),
        sigma in 0.0f64..4.0,
    ) {
        let md = MutationDistance::edge_hamming();
        let expected = sssd_brute(&db, &query, &md, sigma);
        let system = PisSystem::builder()
            .mutation_distance(md)
            .exhaustive_features(3)
            .search_config(PisConfig { verify: false, ..PisConfig::default() })
            .build(db.clone());
        let candidates: Vec<usize> =
            system.search(&query, sigma).candidates.iter().map(|g| g.index()).collect();
        for answer in expected {
            prop_assert!(
                candidates.contains(&answer),
                "answer {} pruned from candidates {:?}",
                answer,
                candidates
            );
        }
    }

    /// The branch-and-bound verifier equals the exhaustive oracle.
    #[test]
    fn bounded_verifier_equals_oracle(
        query in connected_graph(4, 2, 2),
        target in connected_graph(6, 3, 2),
        sigma in 0.0f64..5.0,
    ) {
        let md = MutationDistance::edge_hamming();
        let brute = min_superimposed_distance_brute(&query, &target, &md);
        let fast = min_superimposed_distance(&query, &target, &md, sigma);
        match brute {
            Some(d) if d <= sigma => prop_assert_eq!(fast, Some(d)),
            _ => prop_assert_eq!(fast, None),
        }
    }

    /// Answer sets grow monotonically with sigma.
    #[test]
    fn answers_monotone_in_sigma(
        db in graph_database(6, 5, 3),
        query in connected_graph(4, 1, 3),
    ) {
        let system = PisSystem::builder().exhaustive_features(3).build(db);
        let mut previous: Vec<GraphId> = Vec::new();
        for sigma in [0.0, 1.0, 2.0, 4.0] {
            let answers = system.search(&query, sigma).answers;
            for a in &previous {
                prop_assert!(answers.contains(a), "answer lost as sigma grew");
            }
            previous = answers;
        }
    }

    /// All partition algorithms yield identical answers (they only
    /// change pruning strength, never correctness).
    #[test]
    fn partition_algorithms_sound(
        db in graph_database(6, 5, 3),
        query in connected_graph(4, 1, 3),
        sigma in 0.0f64..3.0,
    ) {
        let base = PisSystem::builder().exhaustive_features(3).build(db);
        let mut reference = None;
        for algo in [PartitionAlgo::Greedy, PartitionAlgo::EnhancedGreedy(2), PartitionAlgo::Exact] {
            let cfg = PisConfig { partition: algo, ..PisConfig::default() };
            let answers = base.search_with(&query, sigma, cfg).answers;
            match &reference {
                None => reference = Some(answers),
                Some(r) => prop_assert_eq!(r, &answers),
            }
        }
    }

    /// topoPrune and the naive scan agree with PIS.
    #[test]
    fn baselines_agree(
        db in graph_database(6, 5, 3),
        query in connected_graph(4, 1, 3),
        sigma in 0.0f64..3.0,
    ) {
        let system = PisSystem::builder().exhaustive_features(3).build(db);
        let pis = system.search(&query, sigma).answers;
        let topo = system.topo_prune(&query, sigma).answers;
        let naive = system.naive_scan(&query, sigma).answers;
        prop_assert_eq!(&pis, &topo);
        prop_assert_eq!(&pis, &naive);
    }

    /// The system is correct away from the molecular distribution too:
    /// dense random graphs with uniform labels.
    #[test]
    fn random_graph_workload_matches_oracle(
        seed in 0u64..500,
        sigma in 0.0f64..3.0,
    ) {
        use pis::datasets::{random_database, RandomGraphConfig};
        let config = RandomGraphConfig {
            min_vertices: 4,
            max_vertices: 8,
            edge_probability: 0.3,
            vertex_labels: 2,
            edge_labels: 2,
            weighted: false,
        };
        let db = random_database(&config, 6, seed);
        let query_src = random_database(&config, 1, seed ^ 0xabcdef).remove(0);
        // Use a sampled piece of a random graph as the query.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = 3.min(query_src.edge_count());
        let Some(query) = pis::datasets::query::sample_query(&query_src, m, &mut rng) else {
            return Ok(());
        };
        let md = MutationDistance::edge_hamming();
        let expected = sssd_brute(&db, &query, &md, sigma);
        let system = PisSystem::builder().exhaustive_features(3).build(db);
        let got: Vec<usize> =
            system.search(&query, sigma).answers.iter().map(|g| g.index()).collect();
        prop_assert_eq!(got, expected);
    }
}
