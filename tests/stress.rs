//! Deep randomized consistency checks at medium scale.
//!
//! These run minutes, not seconds, so they are `#[ignore]`d by default;
//! run them on demand with
//!
//! ```bash
//! cargo test --release --test stress -- --ignored
//! ```

use pis::core::run_workload;
use pis::datasets::{sample_query_set, MoleculeGenerator};
use pis::distance::oracle::sssd_brute;
use pis::prelude::*;

#[test]
#[ignore = "minutes-long randomized deep check; run with -- --ignored"]
fn medium_scale_oracle_agreement() {
    // 150 molecules, exhaustive verification against the brute oracle
    // for a batch of sampled queries across several thresholds.
    let db = MoleculeGenerator::default().database(150, 2024);
    let system = PisSystem::builder()
        .gindex_features(GindexConfig {
            max_edges: 5,
            min_support_fraction: 0.03,
            ..GindexConfig::default()
        })
        .build(db.clone());
    let md = MutationDistance::edge_hamming();
    for m in [8usize, 12, 16] {
        let queries = sample_query_set(&db, m, 8, m as u64);
        for (qi, q) in queries.iter().enumerate() {
            for sigma in [0.0, 1.0, 2.0, 4.0] {
                let got: Vec<usize> =
                    system.search(q, sigma).answers.iter().map(|g| g.index()).collect();
                let expected = sssd_brute(&db, q, &md, sigma);
                assert_eq!(got, expected, "Q{m} query {qi} sigma {sigma}");
            }
        }
    }
}

#[test]
#[ignore = "minutes-long randomized deep check; run with -- --ignored"]
fn incremental_growth_never_diverges() {
    // Grow a system one graph at a time and, at checkpoints, compare
    // against a bulk rebuild on the same corpus.
    let all = MoleculeGenerator::default().database(120, 77);
    let features =
        GindexConfig { max_edges: 4, min_support_fraction: 0.05, ..GindexConfig::default() };
    let mut live = PisSystem::builder().gindex_features(features.clone()).build(all[..40].to_vec());
    let queries = sample_query_set(&all[..40], 10, 5, 9);
    for (i, g) in all[40..].iter().enumerate() {
        live.insert_graph(g.clone());
        if (i + 1) % 40 == 0 {
            // Bulk system over the identical corpus, identical features:
            // answers must match exactly.
            let corpus = live.database().to_vec();
            let bulk = PisSystem::builder().gindex_features(features.clone()).build(corpus);
            for q in &queries {
                for sigma in [1.0, 2.0] {
                    assert_eq!(
                        live.search(q, sigma).answers,
                        bulk.search(q, sigma).answers,
                        "divergence after {} inserts at sigma {sigma}",
                        i + 1
                    );
                }
            }
        }
    }
}

#[test]
#[ignore = "minutes-long randomized deep check; run with -- --ignored"]
fn workload_statistics_are_consistent() {
    let db = MoleculeGenerator::default().database(300, 5);
    let system = PisSystem::builder()
        .gindex_features(GindexConfig {
            max_edges: 5,
            min_support_fraction: 0.03,
            ..GindexConfig::default()
        })
        .build(db.clone());
    let queries = sample_query_set(&db, 14, 20, 3);
    let searcher =
        pis::core::PisSearcher::new(system.index(), system.database(), PisConfig::default());
    let report = run_workload(&searcher, &queries, 2.0);
    assert_eq!(report.queries, 20);
    // Funnel monotonicity must hold in aggregate.
    assert!(report.after_partition.mean <= report.after_intersection.mean);
    assert!(report.after_structure.mean <= report.after_partition.mean);
    assert!(report.answers.mean <= report.after_structure.mean);
    println!("{report}");
}
