//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! This workspace builds with no crates.io access, so external
//! dev-dependencies are replaced by minimal local implementations (see
//! `vendor/README.md`). The `benches/` sources compile unchanged; what
//! changes is the measurement backend:
//!
//! * no statistical analysis, outlier detection or HTML reports —
//!   each benchmark runs a warmup pass plus a bounded timing loop and
//!   prints mean wall time per iteration;
//! * under `cargo test` (cargo passes `--test` to `harness = false`
//!   bench targets) every benchmark body runs **once**, keeping tier-1
//!   runs fast while still smoke-testing the bench code.
//!
//! Numbers printed here are honest wall-clock means but carry none of
//! real Criterion's variance control; treat them as probe output, not
//! publishable measurements.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export: benches import `black_box` from either here or
/// `std::hint`.
pub use std::hint::black_box;

/// Wall-time budget for one benchmark's measurement loop.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark context handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes harness=false bench targets with `--test` under
        // `cargo test` and `--bench` under `cargo bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), test_mode: self.test_mode, sample_size: 100 }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(None, &id, self.test_mode, 100, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    test_mode: bool,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Caps the number of timed iterations (the real crate's number of
    /// statistical samples; here simply an iteration bound).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(Some(&self.name), &id, self.test_mode, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(Some(&self.name), &id, self.test_mode, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (report finalization in the real crate; a no-op
    /// here).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `name` at parameter value `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: name.into(), parameter: Some(parameter.to_string()) }
    }

    /// An id carrying only a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, parameter: None }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Passed to benchmark closures; owns the timing loop.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Mean wall time per iteration of the last `iter` call.
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`: warmup once, then iterate until `sample_size`
    /// iterations or the time budget is spent. In test mode runs the
    /// routine exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.mean = None;
            return;
        }
        black_box(routine()); // warmup
        let start = Instant::now();
        let mut iters = 0u32;
        while iters < self.sample_size as u32 && start.elapsed() < TIME_BUDGET {
            black_box(routine());
            iters += 1;
        }
        self.mean = Some(start.elapsed() / iters.max(1));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    test_mode: bool,
    sample_size: usize,
    mut f: F,
) {
    let mut bencher = Bencher { test_mode, sample_size, mean: None };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match bencher.mean {
        Some(mean) => println!("bench {label:<48} {mean:>12.2?}/iter"),
        None => println!("bench {label:<48} ok (test mode)"),
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
