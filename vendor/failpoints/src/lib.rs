//! Named fault-injection points for deterministic robustness tests.
//!
//! A *failpoint* is a named site in production code (a budget
//! checkpoint, a loop header) that test code can arm to fire after a
//! chosen number of hits. Production crates compile the consultation
//! in only under their `failpoints` cargo feature, so release builds
//! carry zero overhead and no registry.
//!
//! Semantics: [`arm`] / [`arm_panic`] register a countdown for a site
//! name. Every [`consult`] call on that site decrements the countdown;
//! when it reaches zero the point *fires* — and keeps firing on every
//! later consult (sticky) — until [`disarm_all`] resets the registry.
//! Sticky firing models a tripped deadline: once a budget is exhausted
//! it stays exhausted.
//!
//! The registry is process-global; tests that arm failpoints must
//! serialize themselves (e.g. behind a shared `Mutex`) because cargo
//! runs tests in one process.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::Mutex;

/// What an armed failpoint does when it fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Report the site as tripped (models an exhausted budget).
    Trip,
    /// The consulting site should panic (models a worker crash).
    Panic,
}

struct Armed {
    /// Consults remaining before the point fires.
    countdown: u64,
    action: Action,
}

static REGISTRY: Mutex<Option<HashMap<&'static str, Armed>>> = Mutex::new(None);

/// Arms `site` to trip on the `n`-th consult (1-based; `n = 1` fires
/// immediately on the next consult). Replaces any previous arming.
pub fn arm(site: &'static str, n: u64) {
    arm_with(site, n, Action::Trip);
}

/// Arms `site` to request a panic on the `n`-th consult (1-based).
pub fn arm_panic(site: &'static str, n: u64) {
    arm_with(site, n, Action::Panic);
}

fn arm_with(site: &'static str, n: u64, action: Action) {
    assert!(n > 0, "failpoints fire on a 1-based consult count");
    let mut guard = REGISTRY.lock().expect("failpoint registry poisoned");
    guard.get_or_insert_with(HashMap::new).insert(site, Armed { countdown: n, action });
}

/// Disarms every failpoint.
pub fn disarm_all() {
    let mut guard = REGISTRY.lock().expect("failpoint registry poisoned");
    *guard = None;
}

/// Consults `site`: decrements its countdown and returns the action
/// once the countdown is exhausted (sticky — every later consult keeps
/// returning it). `None` while unarmed or still counting down.
pub fn consult(site: &str) -> Option<Action> {
    let mut guard = REGISTRY.lock().expect("failpoint registry poisoned");
    let map = guard.as_mut()?;
    let armed = map.get_mut(site)?;
    if armed.countdown > 0 {
        armed.countdown -= 1;
    }
    if armed.countdown == 0 {
        Some(armed.action)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global: serialize the tests touching it.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn fires_on_nth_consult_and_stays_fired() {
        let _guard = SERIAL.lock().unwrap();
        disarm_all();
        arm("site-a", 3);
        assert_eq!(consult("site-a"), None);
        assert_eq!(consult("site-a"), None);
        assert_eq!(consult("site-a"), Some(Action::Trip));
        assert_eq!(consult("site-a"), Some(Action::Trip), "sticky after firing");
        disarm_all();
        assert_eq!(consult("site-a"), None);
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let _guard = SERIAL.lock().unwrap();
        disarm_all();
        assert_eq!(consult("nothing-armed-here"), None);
    }

    #[test]
    fn panic_action_is_reported_not_raised() {
        let _guard = SERIAL.lock().unwrap();
        disarm_all();
        arm_panic("site-b", 1);
        assert_eq!(consult("site-b"), Some(Action::Panic));
        disarm_all();
    }

    #[test]
    fn rearming_replaces_the_countdown() {
        let _guard = SERIAL.lock().unwrap();
        disarm_all();
        arm("site-c", 1);
        assert_eq!(consult("site-c"), Some(Action::Trip));
        arm("site-c", 2);
        assert_eq!(consult("site-c"), None, "re-arm resets the countdown");
        assert_eq!(consult("site-c"), Some(Action::Trip));
        disarm_all();
    }
}
