//! Collection strategies (`proptest::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive size band for generated collections; converts from
/// `usize` (exact), `Range<usize>` and `RangeInclusive<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// A strategy yielding `Vec`s whose length lies in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
