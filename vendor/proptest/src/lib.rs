//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! This workspace builds with no crates.io access, so external test
//! dependencies are replaced by minimal local implementations (see
//! `vendor/README.md`). The subset provided is exactly what the PIS
//! test suite uses:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `prop_filter`, implemented for integer and float ranges, tuples
//!   (arity 1–8) and [`Just`];
//! * [`collection::vec`] and [`sample::select`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * a [`test_runner::TestRunner`] that runs each property over a
//!   deterministic seeded stream of cases.
//!
//! **Deliberate simplification:** there is no shrinking. A failing case
//! reports the exact generated inputs (regenerated from the saved RNG
//! state), which for this suite's small strategies is close enough to a
//! minimal counterexample to debug from. Case streams are deterministic
//! per test, so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection;
pub mod sample;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current property (returns `Err(TestCaseError)` from the
/// enclosing `proptest!` body) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `(left != right)`\n  both: `{:?}`", l);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` that runs the body over generated cases.
///
/// Supports the same shape the real crate does for this suite:
/// an optional leading `#![proptest_config(expr)]`, doc comments and
/// `#[test]` attributes on each function, and `return Ok(())` /
/// `prop_assert*!` inside bodies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_functions! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_functions! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_functions {
    { ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new_for_test(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let strategy = ( $( $strat, )+ );
                runner.run(&strategy, |( $($pat,)+ )| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}
