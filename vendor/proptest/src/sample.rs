//! Sampling strategies (`prop::sample::select`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A strategy drawing uniformly from a fixed, non-empty set of values.
pub fn select<T: Clone + core::fmt::Debug>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select requires at least one value");
    Select { values }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + core::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.values[rng.random_range(0..self.values.len())].clone()
    }
}
