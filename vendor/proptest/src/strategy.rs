//! The [`Strategy`] trait and the combinators/primitive strategies the
//! PIS suite uses. Generation is plain sampling — no shrink trees.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type from an RNG.
///
/// Unlike the real crate there is no `ValueTree`: `generate` must be
/// deterministic given the RNG state, which is what lets the runner
/// re-derive a failing input for reporting.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred` (retries up to a bounded
    /// number of times, then panics — mirrors the real crate giving up
    /// on too many local rejects).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
