//! The case runner behind the `proptest!` macro.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Configuration for one property (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum rejected cases (`TestCaseError::Reject`) tolerated
    /// before the property fails for under-sampling.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A default configuration overriding only `cases`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 1024 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is violated (assertion failure).
    Fail(String),
    /// The input was rejected (does not count as failure).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Drives a strategy through `config.cases` generated cases.
///
/// The RNG is seeded from the test's fully-qualified name, so each
/// property sees a case stream that is stable across runs and
/// independent of execution order — a failure report is reproducible
/// by just re-running the test.
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
    name: &'static str,
}

impl TestRunner {
    /// A runner with an anonymous deterministic stream.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config, rng: StdRng::seed_from_u64(0x5eed), name: "property" }
    }

    /// A runner whose stream is derived from the test name (used by the
    /// `proptest!` macro).
    pub fn new_for_test(config: ProptestConfig, name: &'static str) -> Self {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        TestRunner { config, rng: StdRng::seed_from_u64(hasher.finish()), name }
    }

    /// Runs `test` on `config.cases` generated inputs, panicking (with
    /// the regenerated failing input) on the first failure.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: core::fmt::Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < self.config.cases {
            // Snapshot the RNG so a failing input can be regenerated
            // for the report (values may be consumed by `test`).
            let before = self.rng.clone();
            let value = strategy.generate(&mut self.rng);
            match test(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "{}: too many rejected cases ({rejects})",
                        self.name
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    let mut replay = before;
                    let input = strategy.generate(&mut replay);
                    panic!("{} failed at case {case}\ninput: {input:#?}\n{msg}", self.name);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_a_true_property() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(50));
        runner.run(&(0usize..100), |x| {
            if x >= 100 {
                return Err(TestCaseError::fail("out of range"));
            }
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn reports_a_false_property() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(50));
        runner.run(&(0usize..100), |x| {
            if x > 10 {
                return Err(TestCaseError::fail("too big"));
            }
            Ok(())
        });
    }

    #[test]
    fn case_streams_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner =
                TestRunner::new_for_test(ProptestConfig::with_cases(20), "stream_test");
            runner.run(&(0usize..1000), |x| {
                out.push(x);
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
