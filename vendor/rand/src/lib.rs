//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.9-style API).
//!
//! This workspace builds in environments with no crates.io access, so
//! the external dev/runtime dependencies are replaced by minimal local
//! implementations (see `vendor/README.md`). Only the surface PIS
//! actually uses is provided:
//!
//! * [`RngCore`] / [`Rng`] with `random::<T>()`, `random_range(..)` and
//!   `random_bool(p)`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (seeded
//!   via SplitMix64), *not* the cryptographic ChaCha generator the real
//!   crate uses. PIS only needs reproducible pseudo-randomness for
//!   synthetic data and tests; nothing here is security-sensitive.
//!
//! Seeded streams are stable across runs and platforms but differ from
//! the real `rand` crate's streams, so generated datasets are
//! reproducible *within* this workspace only.

#![forbid(unsafe_code)]

/// A source of raw random 32/64-bit words (object-safe).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (including `&mut dyn RngCore`, which is itself `Sized`).
pub trait Rng: RngCore {
    /// A uniformly random value of a standard-samplable type
    /// (`f64`/`f32` in `[0, 1)`, full range for integers, fair `bool`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`. Panics on empty ranges.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (the real crate's
/// `StandardUniform`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from (the real crate's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = StandardSample::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. Statistically solid for synthetic
    /// data and property tests; **not** cryptographically secure (the
    /// real `StdRng` is ChaCha12).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_not_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..1000).map(|_| rng.random::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v: usize = rng.random_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v: u32 = rng.random_range(3..=4);
            assert!((3..=4).contains(&v));
        }
        for _ in 0..200 {
            let v: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn works_through_generic_and_reborrowed_receivers() {
        // `Rng`'s sampling methods need `Self: Sized`, so a
        // `&mut dyn RngCore` cannot call them directly (same as the
        // real crate) — but generic call-sites and reborrows work.
        fn sample<R: Rng>(rng: &mut R) -> (usize, f64) {
            (rng.random_range(0..10), rng.random())
        }
        let mut rng = StdRng::seed_from_u64(3);
        let (v, f) = sample(&mut rng);
        assert!(v < 10);
        assert!((0.0..1.0).contains(&f));
        // A `&mut dyn RngCore` is itself Sized and implements RngCore,
        // so it can be handed to generic samplers.
        let dynrng: &mut dyn RngCore = &mut rng;
        let (v, _) = sample(&mut &mut *dynrng);
        assert!(v < 10);
    }
}
